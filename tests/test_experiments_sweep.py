"""Tests for the parallel sweep runner, RunSpec and measure validation."""

import pytest

from repro.experiments.ablation import flappiness_point
from repro.experiments.rtt_heterogeneity import rtt_sweep_point
from repro.experiments.runner import RunSpec, measure
from repro.experiments.sweep import (
    MANIFEST_SCHEMA,
    SWEEP_PENDING,
    SweepRunner,
    load_all_specs,
    load_manifest,
    load_shard,
    pending_attr,
    pending_row,
    write_shards,
)
from repro.sim.engine import Simulator


def _rtt_specs():
    return [RunSpec.make(rtt_sweep_point, algorithm="olia", base_rtt=0.1,
                         ratio=ratio, n_tcp=2)
            for ratio in (0.5, 1.0, 2.0, 4.0)]


def _seeded_specs():
    """DES points whose results depend on their seeds."""
    return [RunSpec.make(flappiness_point, algorithm="olia",
                         capacity_mbps=10.0, duration=3.0, seed=seed)
            for seed in (1, 2, 3, 4)]


class TestRunSpec:
    def test_content_hash_ignores_kwarg_order(self):
        a = RunSpec.make(rtt_sweep_point, algorithm="olia", base_rtt=0.1,
                         ratio=1.0, n_tcp=2)
        b = RunSpec.make(rtt_sweep_point, ratio=1.0, n_tcp=2,
                         base_rtt=0.1, algorithm="olia")
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_content_hash_sensitive_to_args_and_seed(self):
        base = RunSpec.make(rtt_sweep_point, algorithm="olia",
                            base_rtt=0.1, ratio=1.0, n_tcp=2)
        other = RunSpec.make(rtt_sweep_point, algorithm="lia",
                             base_rtt=0.1, ratio=1.0, n_tcp=2)
        seeded = RunSpec.make(rtt_sweep_point, algorithm="olia",
                              base_rtt=0.1, ratio=1.0, n_tcp=2, seed=3)
        assert base.content_hash() != other.content_hash()
        assert base.content_hash() != seeded.content_hash()

    def test_rejects_non_module_level_functions(self):
        with pytest.raises(ValueError):
            RunSpec.make(lambda: None)

        def nested():
            return None

        with pytest.raises(ValueError):
            RunSpec.make(nested)

    def test_execute_injects_seed(self):
        spec = RunSpec.make(flappiness_point, algorithm="olia",
                            capacity_mbps=10.0, duration=2.0, seed=5)
        again = spec.execute()
        assert again == flappiness_point(algorithm="olia",
                                         capacity_mbps=10.0,
                                         duration=2.0, seed=5)

    def test_derived_seed_is_stable_and_content_dependent(self):
        a = RunSpec.make(rtt_sweep_point, ratio=1.0)
        b = RunSpec.make(rtt_sweep_point, ratio=1.0)
        c = RunSpec.make(rtt_sweep_point, ratio=2.0)
        assert a.derived_seed(0) == b.derived_seed(0)
        assert a.derived_seed(0) != c.derived_seed(0)
        assert a.derived_seed(0) != a.derived_seed(1)


class TestSweepRunnerDeterminism:
    def test_jobs2_matches_jobs1_order_fixed_seed(self):
        """The PR's regression criterion: a pool of 2 workers returns the
        exact same results in the exact same order as in-process runs."""
        serial = SweepRunner(jobs=1).run(_seeded_specs())
        parallel = SweepRunner(jobs=2).run(_seeded_specs())
        assert parallel == serial

    def test_jobs2_matches_jobs1_fluid_sweep(self):
        serial = SweepRunner(jobs=1).run(_rtt_specs())
        parallel = SweepRunner(jobs=2).run(_rtt_specs())
        assert parallel == serial

    def test_single_point_runs_in_process(self):
        specs = _rtt_specs()[:1]
        assert SweepRunner(jobs=4).run(specs) == \
            SweepRunner(jobs=1).run(specs)

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestSweepRunnerCache:
    def test_second_run_is_all_hits(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)
        first = runner.run(_rtt_specs())
        assert runner.cache_misses == 4
        again = SweepRunner(jobs=1, cache_dir=tmp_path)
        second = again.run(_rtt_specs())
        assert again.cache_hits == 4
        assert again.cache_misses == 0
        assert second == first

    def test_pool_run_populates_cache(self, tmp_path):
        runner = SweepRunner(jobs=2, cache_dir=tmp_path)
        first = runner.run(_seeded_specs())
        again = SweepRunner(jobs=2, cache_dir=tmp_path)
        second = again.run(_seeded_specs())
        assert again.cache_hits == 4
        assert second == first

    def test_partial_cache_only_recomputes_missing(self, tmp_path):
        specs = _rtt_specs()
        SweepRunner(jobs=1, cache_dir=tmp_path).run(specs[:2])
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)
        results = runner.run(specs)
        assert runner.cache_hits == 2
        assert runner.cache_misses == 2
        assert results == SweepRunner(jobs=1).run(specs)

    def test_no_cache_dir_recomputes(self):
        runner = SweepRunner(jobs=1)
        runner.run(_rtt_specs()[:1])
        runner.run(_rtt_specs()[:1])
        assert runner.cache_hits == 0
        assert runner.cache_misses == 2


class TestSweepRunnerMap:
    def test_map_preserves_point_order(self):
        runner = SweepRunner(jobs=1)
        points = [dict(algorithm="olia", base_rtt=0.1, ratio=r, n_tcp=2)
                  for r in (2.0, 0.5, 1.0)]
        results = runner.map(rtt_sweep_point, points)
        assert [row[0] for row in results] == [2.0, 0.5, 1.0]

    def test_map_base_seed_derives_per_point_seeds(self):
        runner = SweepRunner(jobs=1)
        points = [dict(algorithm="olia", capacity_mbps=10.0, duration=2.0)
                  for _ in range(2)]
        results = runner.map(flappiness_point, points, base_seed=7)
        # Identical points derive identical seeds -> identical results.
        assert results[0] == results[1]
        other = runner.map(flappiness_point, points, base_seed=8)
        assert other != results


class TestRunBatched:
    @staticmethod
    def _batch_eval(pending):
        return [spec.execute() for spec in pending]

    def test_matches_per_point_run(self):
        specs = _rtt_specs()
        batched = SweepRunner(jobs=1).run_batched(specs, self._batch_eval)
        assert batched == SweepRunner(jobs=1).run(specs)

    def test_batch_fn_sees_only_pending_owned_points(self, tmp_path):
        specs = _rtt_specs()
        SweepRunner(jobs=1, cache_dir=tmp_path).run(specs[:1])
        seen = []

        def spy(pending):
            seen.extend(pending)
            return self._batch_eval(pending)

        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard=(0, 2))
        results = runner.run_batched(specs, spy)
        # Point 0 was cached, point 1 and 3 belong to shard 1: only
        # point 2 reaches the batch call.
        assert seen == [specs[2]]
        assert results[3] is SWEEP_PENDING
        assert runner.cache_hits == 1

    def test_batch_fn_fills_cache_for_later_runs(self, tmp_path):
        specs = _rtt_specs()
        SweepRunner(jobs=1, cache_dir=tmp_path).run_batched(
            specs, self._batch_eval)
        again = SweepRunner(jobs=1, cache_dir=tmp_path)
        assert again.run(specs) == SweepRunner(jobs=1).run(specs)
        assert again.cache_hits == len(specs)

    def test_wrong_result_count_rejected(self):
        with pytest.raises(ValueError, match="batch_fn"):
            SweepRunner(jobs=1).run_batched(
                _rtt_specs(), lambda pending: pending[:-1])


class _StopSweep(Exception):
    """Stand-in for Ctrl-C during a long sweep."""


class TestSweepResumeAfterInterrupt:
    def test_interrupted_run_keeps_completed_points(self, tmp_path):
        """The PR's resume criterion: a sweep killed mid-flight resumes
        from the on-disk cache and recomputes only the missing points."""
        specs = _rtt_specs()
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)

        def interrupt(progress):
            if progress.done == 2:
                raise _StopSweep()

        with pytest.raises(_StopSweep):
            runner.run(specs, progress=interrupt)

        resumed = SweepRunner(jobs=1, cache_dir=tmp_path)
        results = resumed.run(specs)
        assert resumed.cache_hits == 2
        assert resumed.cache_misses == 2
        assert results == SweepRunner(jobs=1).run(specs)

    def test_pool_run_stores_incrementally(self, tmp_path):
        """Worker results hit the cache as they complete, not at the
        end, so a crashed pool run is resumable too."""
        specs = _seeded_specs()
        seen = []

        def watch(progress):
            # Every completed point is already on disk by the time the
            # progress callback observes it.
            seen.append(len(list(tmp_path.glob("*.pkl"))))

        SweepRunner(jobs=2, cache_dir=tmp_path).run(specs, progress=watch)
        assert seen == [1, 2, 3, 4]


class TestSweepProgress:
    def test_progress_counts_all_points(self):
        ticks = []
        SweepRunner(jobs=1).run(_rtt_specs(),
                                progress=lambda p: ticks.append(p))
        assert [p.done for p in ticks] == [1, 2, 3, 4]
        assert all(p.total == 4 for p in ticks)
        assert sorted(p.index for p in ticks) == [0, 1, 2, 3]
        assert not any(p.from_cache for p in ticks)

    def test_progress_reports_cache_hits(self, tmp_path):
        specs = _rtt_specs()
        SweepRunner(jobs=1, cache_dir=tmp_path).run(specs[:2])
        ticks = []
        SweepRunner(jobs=1, cache_dir=tmp_path).run(
            specs, progress=lambda p: ticks.append(p))
        assert [p.from_cache for p in ticks] == [True, True, False, False]
        assert ticks[-1].cache_hits == 2


class TestShardedSweep:
    def test_shards_split_and_merge_through_cache(self, tmp_path):
        specs = _rtt_specs()
        first = SweepRunner(jobs=1, cache_dir=tmp_path, shard=(0, 2))
        partial = first.run(specs)
        assert first.cache_misses == 2
        assert first.skipped == 2
        assert partial[0] is not SWEEP_PENDING
        assert partial[1] is SWEEP_PENDING

        second = SweepRunner(jobs=1, cache_dir=tmp_path, shard=(1, 2))
        second.run(specs)

        merged = SweepRunner(jobs=1, cache_dir=tmp_path)
        results = merged.run(specs)
        assert merged.cache_hits == 4
        assert merged.cache_misses == 0
        assert results == SweepRunner(jobs=1).run(specs)

    def test_shard_serves_cached_points_it_does_not_own(self, tmp_path):
        specs = _rtt_specs()
        SweepRunner(jobs=1, cache_dir=tmp_path).run(specs[:2])
        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard=(0, 2))
        results = runner.run(specs)
        # Point 1 belongs to shard 1 but is already cached.
        assert results[1] is not SWEEP_PENDING
        assert results[3] is SWEEP_PENDING

    def test_shard_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            SweepRunner(jobs=1, shard=(0, 2))

    def test_invalid_shard_rejected(self, tmp_path):
        for shard in ((2, 2), (-1, 2), (0, 0)):
            with pytest.raises(ValueError, match="shard"):
                SweepRunner(jobs=1, cache_dir=tmp_path, shard=shard)

    def test_pending_helpers(self):
        class Thing:
            value = 7

        assert pending_attr(Thing(), "value") == 7
        assert pending_attr(SWEEP_PENDING, "value") is SWEEP_PENDING
        assert pending_row((1, 2), 5) == (1, 2)
        assert pending_row(SWEEP_PENDING, 3) == (SWEEP_PENDING,) * 3
        assert str(SWEEP_PENDING) == "PENDING"


class TestWorkStealingSweep:
    def test_single_stealer_computes_everything(self, tmp_path):
        specs = _rtt_specs()
        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        results = runner.run(specs)
        assert runner.cache_misses == 4
        assert runner.skipped == 0
        assert results == SweepRunner(jobs=1).run(specs)
        # Completed claims are released: only result pickles remain.
        assert list(tmp_path.glob("*.claim")) == []
        assert len(list(tmp_path.glob("*.pkl"))) == 4

    def test_claimed_points_are_left_to_their_owner(self, tmp_path):
        """A point whose claim file exists belongs to another runner:
        the stealer skips it and reports it PENDING."""
        specs = _rtt_specs()
        other = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        assert other._try_claim(specs[1])
        assert other._try_claim(specs[3])

        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        results = runner.run(specs)
        assert runner.cache_misses == 2
        assert runner.skipped == 2
        assert results[0] is not SWEEP_PENDING
        assert results[1] is SWEEP_PENDING
        assert results[2] is not SWEEP_PENDING
        assert results[3] is SWEEP_PENDING

    def test_stealers_merge_through_the_shared_cache(self, tmp_path):
        """Two stealers (sequenced here; concurrent in production) plus
        an unsharded merge run reproduce the full sweep."""
        specs = _rtt_specs()
        first = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        # Simulate contention: the second stealer already holds 2 and 3.
        second = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        assert second._try_claim(specs[2])
        assert second._try_claim(specs[3])
        first.run(specs)
        second._release_claim(specs[2])
        second._release_claim(specs[3])
        second.run(specs)
        assert first.cache_misses == 2
        assert second.cache_misses == 2

        merged = SweepRunner(jobs=1, cache_dir=tmp_path)
        results = merged.run(specs)
        assert merged.cache_hits == 4
        assert results == SweepRunner(jobs=1).run(specs)

    def test_claims_are_taken_per_point_not_upfront(self, tmp_path):
        """Claims must be created immediately before computing each
        point — an upfront claim sweep would hand one runner the whole
        grid and starve every concurrent stealer."""
        claim_snapshots = []

        def watch(progress):
            if not progress.from_cache:
                claim_snapshots.append(
                    len(list(tmp_path.glob("*.claim"))))

        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        runner.run(_rtt_specs(), progress=watch)
        # By each computed point's tick, its own claim was released and
        # no other point had been claimed yet.
        assert claim_snapshots == [0, 0, 0, 0]

    def test_interrupted_steal_run_resumes_itself(self, tmp_path):
        """A stealer killed mid-grid must be able to finish its own
        sweep on re-run: completed points' claims were released, and
        the surviving claims cover at most the in-flight points."""
        specs = _rtt_specs()
        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")

        def interrupt(progress):
            if progress.done == 2:
                raise _StopSweep()

        with pytest.raises(_StopSweep):
            runner.run(specs, progress=interrupt)

        resumed = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        results = resumed.run(specs)
        assert resumed.skipped == 0
        assert results == SweepRunner(jobs=1).run(specs)

    def test_point_finished_elsewhere_mid_run_is_served_from_cache(
            self, tmp_path):
        """If another stealer completes a point after this runner's
        initial scan, the pre-claim cache re-check picks the result up
        instead of recomputing or skipping it."""
        specs = _rtt_specs()
        donor = SweepRunner(jobs=1, cache_dir=tmp_path)

        def plant(progress):
            # While point 0 computes, a "concurrent" runner finishes
            # points 2 and 3.
            if progress.index == 0:
                donor.run(specs[2:])

        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        results = runner.run(specs, progress=plant)
        assert runner.cache_misses == 2        # points 0 and 1
        assert runner.cache_hits == 2          # points 2 and 3, late
        assert results == SweepRunner(jobs=1).run(specs)

    def test_cached_points_are_not_claimed(self, tmp_path):
        specs = _rtt_specs()
        SweepRunner(jobs=1, cache_dir=tmp_path).run(specs[:2])
        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        results = runner.run(specs)
        assert runner.cache_hits == 2
        assert runner.cache_misses == 2
        assert results == SweepRunner(jobs=1).run(specs)

    def test_stale_claim_is_ignored_by_merge_run(self, tmp_path):
        """A crashed stealer leaves a claim file; the unsharded merge
        run computes the point anyway (claims only gate stealers)."""
        specs = _rtt_specs()
        crashed = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        assert crashed._try_claim(specs[0])

        stealer = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        partial = stealer.run(specs)
        assert partial[0] is SWEEP_PENDING

        merged = SweepRunner(jobs=1, cache_dir=tmp_path)
        results = merged.run(specs)
        assert results == SweepRunner(jobs=1).run(specs)

    def test_steal_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            SweepRunner(jobs=1, shard="steal")

    def test_unknown_shard_string_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="steal"):
            SweepRunner(jobs=1, cache_dir=tmp_path, shard="grab")

    def test_steal_with_pool_rolls_a_claim_window(self, tmp_path):
        """jobs>1 stealing claims points one at a time as workers free
        up (no chunk barrier) and still reproduces the serial results."""
        specs = _seeded_specs()
        runner = SweepRunner(jobs=2, cache_dir=tmp_path, shard="steal")
        results = runner.run(specs)
        assert runner.cache_misses == 4
        assert list(tmp_path.glob("*.claim")) == []
        assert results == SweepRunner(jobs=1).run(specs)

    def test_failed_batch_run_releases_its_claims(self, tmp_path):
        """A batch_fn that blows up must not park the whole grid: the
        claims it took are released on the way out, so another stealer
        can take over immediately."""
        specs = _rtt_specs()

        def boom(pending):
            raise RuntimeError("solver exploded")

        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        with pytest.raises(RuntimeError, match="solver exploded"):
            runner.run_batched(specs, boom)
        assert list(tmp_path.glob("*.claim")) == []

        second = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        results = second.run(specs)
        assert second.skipped == 0
        assert results == SweepRunner(jobs=1).run(specs)

    def test_steal_composes_with_run_batched(self, tmp_path):
        specs = _rtt_specs()
        other = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        assert other._try_claim(specs[1])
        seen = []

        def spy(pending):
            seen.extend(pending)
            return [spec.execute() for spec in pending]

        runner = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        results = runner.run_batched(specs, spy)
        assert seen == [specs[0], specs[2], specs[3]]
        assert results[1] is SWEEP_PENDING


class TestStaleClaimReaping:
    def test_invalid_claim_ttl_rejected(self, tmp_path):
        for bad in (0.0, -5.0):
            with pytest.raises(ValueError, match="claim_ttl"):
                SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal",
                            claim_ttl=bad)

    def test_aged_claim_is_reaped_and_point_computed(self, tmp_path):
        """A hard-killed worker never releases its claims; with a TTL
        set, a claim older than the TTL is treated as abandoned and the
        stealer takes the point over instead of parking it."""
        import os

        specs = _rtt_specs()
        crashed = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        assert crashed._try_claim(specs[0])
        assert crashed._try_claim(specs[2])
        for spec in (specs[0], specs[2]):
            path = crashed._claim_path(spec)
            aged = path.stat().st_mtime - 3600
            os.utime(path, (aged, aged))

        reaper = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal",
                             claim_ttl=600.0)
        results = reaper.run(specs)
        assert reaper.skipped == 0
        assert reaper.cache_misses == 4
        assert results == SweepRunner(jobs=1).run(specs)
        assert list(tmp_path.glob("*.claim")) == []

    def test_fresh_claim_survives_the_ttl(self, tmp_path):
        """A live worker's recent claim must never be stolen."""
        specs = _rtt_specs()
        owner = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        assert owner._try_claim(specs[1])

        stealer = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal",
                              claim_ttl=3600.0)
        results = stealer.run(specs)
        assert stealer.skipped == 1
        assert results[1] is SWEEP_PENDING
        assert owner._claim_path(specs[1]).exists()

    def test_no_ttl_never_reaps(self, tmp_path):
        """The default keeps the historical behavior: stale claims park
        their points until an unsharded merge run picks them up."""
        import os

        specs = _rtt_specs()
        crashed = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        assert crashed._try_claim(specs[0])
        path = crashed._claim_path(specs[0])
        os.utime(path, (1_000_000, 1_000_000))

        stealer = SweepRunner(jobs=1, cache_dir=tmp_path, shard="steal")
        results = stealer.run(specs)
        assert stealer.skipped == 1
        assert results[0] is SWEEP_PENDING
        assert path.exists()


class TestSpecSpill:
    def test_write_and_load_shards_round_trip(self, tmp_path):
        specs = _rtt_specs()
        paths = write_shards(specs, tmp_path / "spill", shard_count=3)
        assert len(paths) == 3
        manifest = load_manifest(tmp_path / "spill")
        assert manifest["total"] == 4
        assert manifest["shard_count"] == 3
        assert manifest["spec_hashes"] == [s.content_hash() for s in specs]
        loaded = [spec for i in range(3)
                  for spec in load_shard(tmp_path / "spill", i)]
        assert sorted(s.content_hash() for s in loaded) == \
            sorted(s.content_hash() for s in specs)

    def test_spilled_shards_fill_a_shared_cache(self, tmp_path):
        specs = _rtt_specs()
        write_shards(specs, tmp_path / "spill", shard_count=2)
        cache = tmp_path / "cache"
        for shard_index in range(2):
            SweepRunner(jobs=1, cache_dir=cache).run(
                load_shard(tmp_path / "spill", shard_index))
        merged = SweepRunner(jobs=1, cache_dir=cache)
        results = merged.run(specs)
        assert merged.cache_hits == 4
        assert results == SweepRunner(jobs=1).run(specs)

    def test_load_shard_validates_index(self, tmp_path):
        write_shards(_rtt_specs(), tmp_path, shard_count=2)
        with pytest.raises(ValueError, match="shard_index"):
            load_shard(tmp_path, 2)

    def test_write_shards_rejects_bad_count(self, tmp_path):
        with pytest.raises(ValueError, match="shard_count"):
            write_shards(_rtt_specs(), tmp_path, shard_count=0)

    def test_manifest_is_schema_stamped(self, tmp_path):
        write_shards(_rtt_specs(), tmp_path, shard_count=2)
        assert load_manifest(tmp_path)["schema"] == MANIFEST_SCHEMA

    def test_load_all_specs_restores_result_order(self, tmp_path):
        specs = _rtt_specs()
        for count in (1, 2, 3, 4):
            spill = tmp_path / f"spill-{count}"
            write_shards(specs, spill, shard_count=count)
            assert load_all_specs(spill) == specs

    def test_missing_manifest_names_the_path(self, tmp_path):
        with pytest.raises(FileNotFoundError,
                           match="no spec-spill manifest"):
            load_manifest(tmp_path / "nowhere")

    def test_truncated_manifest_fails_loudly(self, tmp_path):
        write_shards(_rtt_specs(), tmp_path, shard_count=2)
        path = tmp_path / "manifest.json"
        path.write_text(path.read_text()[:25])
        with pytest.raises(ValueError, match="unreadable spec-spill"):
            load_manifest(tmp_path)
        with pytest.raises(ValueError, match="manifest.json"):
            load_shard(tmp_path, 0)   # load_shard surfaces it too

    def test_schema_mismatch_fails_loudly(self, tmp_path):
        import json as json_mod
        write_shards(_rtt_specs(), tmp_path, shard_count=2)
        path = tmp_path / "manifest.json"
        manifest = json_mod.loads(path.read_text())
        manifest["schema"] = MANIFEST_SCHEMA + 1
        path.write_text(json_mod.dumps(manifest))
        with pytest.raises(ValueError, match="schema version"):
            load_manifest(tmp_path)

    def test_unstamped_legacy_manifest_rejected(self, tmp_path):
        import json as json_mod
        write_shards(_rtt_specs(), tmp_path, shard_count=2)
        path = tmp_path / "manifest.json"
        manifest = json_mod.loads(path.read_text())
        del manifest["schema"]    # a spill from before the stamp
        path.write_text(json_mod.dumps(manifest))
        with pytest.raises(ValueError, match="schema version 1"):
            load_manifest(tmp_path)

    def test_missing_manifest_key_names_it(self, tmp_path):
        import json as json_mod
        write_shards(_rtt_specs(), tmp_path, shard_count=2)
        path = tmp_path / "manifest.json"
        manifest = json_mod.loads(path.read_text())
        del manifest["spec_hashes"]
        path.write_text(json_mod.dumps(manifest))
        with pytest.raises(ValueError, match="spec_hashes"):
            load_manifest(tmp_path)

    def test_inconsistent_manifest_counts_rejected(self, tmp_path):
        import json as json_mod
        write_shards(_rtt_specs(), tmp_path, shard_count=2)
        path = tmp_path / "manifest.json"
        manifest = json_mod.loads(path.read_text())
        manifest["total"] = 99
        path.write_text(json_mod.dumps(manifest))
        with pytest.raises(ValueError, match="inconsistent"):
            load_manifest(tmp_path)

    def test_torn_shard_file_fails_loudly(self, tmp_path):
        write_shards(_rtt_specs(), tmp_path, shard_count=2)
        shard = tmp_path / "shard-0001.pkl"
        shard.write_bytes(shard.read_bytes()[:7])
        with pytest.raises(ValueError, match="unreadable shard file"):
            load_shard(tmp_path, 1)

    def test_missing_shard_file_fails_loudly(self, tmp_path):
        write_shards(_rtt_specs(), tmp_path, shard_count=2)
        (tmp_path / "shard-0001.pkl").unlink()
        with pytest.raises(FileNotFoundError, match="missing shard file"):
            load_shard(tmp_path, 1)

    def test_shard_hash_mismatch_rejected(self, tmp_path):
        import pickle as pickle_mod
        specs = _rtt_specs()
        write_shards(specs, tmp_path, shard_count=2)
        # Overwrite shard 0 with different specs: same count, wrong
        # content — the loader must notice via the manifest hashes.
        imposter = [RunSpec.make(rtt_sweep_point, algorithm="lia",
                                 base_rtt=0.1, ratio=r, n_tcp=2)
                    for r in (0.5, 2.0)]
        (tmp_path / "shard-0000.pkl").write_bytes(
            pickle_mod.dumps(imposter))
        with pytest.raises(ValueError, match="does not match its manifest"):
            load_shard(tmp_path, 0)


class TestMeasureValidation:
    def test_warmup_must_be_smaller_than_duration(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="warmup"):
            measure(sim, {}, [], warmup=5.0, duration=5.0)
        with pytest.raises(ValueError, match="warmup"):
            measure(sim, {}, [], warmup=10.0, duration=2.0)

    def test_valid_warmup_still_accepted(self):
        sim = Simulator()
        result = measure(sim, {}, [], warmup=0.5, duration=1.0)
        assert result.duration == 1.0
