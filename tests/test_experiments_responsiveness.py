"""Tests for the fluid responsiveness/stability experiments."""

import math

import numpy as np
import pytest

from repro.experiments import responsiveness
from repro.fluid import FluidNetwork, PowerLoss, integrate


class TestSettlingTime:
    def test_settled_trajectory_reports_early_time(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(capacity=100.0))
        user = net.add_user()
        net.add_route(user, [link], rtt=0.1)
        traj = integrate(net, "tcp", t_end=60.0, dt=2e-3)
        settle = traj.settling_time(rel_tol=0.1)
        assert math.isfinite(settle)
        assert settle < 30.0

    def test_equilibrium_start_settles_immediately(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(capacity=100.0))
        user = net.add_user()
        net.add_route(user, [link], rtt=0.1)
        warm = integrate(net, "tcp", t_end=60.0, dt=2e-3)
        traj = integrate(net, "tcp", t_end=10.0, dt=2e-3,
                         x0=warm.final_rates)
        assert traj.settling_time(rel_tol=0.1) < 1.0

    def test_unsettled_is_infinite(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(capacity=100.0))
        user = net.add_user()
        net.add_route(user, [link], rtt=0.1)
        # Far-from-equilibrium start with a tiny horizon: the rate is
        # still climbing at the last sample, so it never settles.
        traj = integrate(net, "tcp", t_end=0.05, dt=1e-3,
                         x0=np.array([1.0]), record_every=1)
        assert traj.settling_time(rel_tol=0.001) == float("inf")


class TestCapacityDrop:
    @pytest.fixture(scope="class")
    def table(self):
        return responsiveness.capacity_drop_settling_table(
            algorithms=("olia", "lia"), t_converge=40.0, t_measure=40.0)

    def test_all_algorithms_settle(self, table):
        for settle in table.column("settling time (s)"):
            assert math.isfinite(settle)
            assert settle < 40.0

    def test_multipath_rate_drops_with_capacity(self, table):
        for before, after in zip(table.column("mp rate before"),
                                 table.column("mp rate after")):
            assert after < before

    def test_olia_about_as_responsive_as_lia(self, table):
        """The paper's claim: OLIA is as responsive as LIA."""
        rows = {row[0]: row[1] for row in table.rows}
        assert rows["olia"] < 3.0 * max(rows["lia"], 1.0)


class TestStability:
    def test_all_perturbations_return_to_equilibrium(self):
        table = responsiveness.stability_table(
            algorithm="olia", perturbation_factors=(0.2, 5.0),
            t_end=60.0)
        for deviation in table.column(
                "max relative deviation at t_end"):
            assert deviation < 0.1

    def test_lia_also_stable(self):
        table = responsiveness.stability_table(
            algorithm="lia", perturbation_factors=(0.5, 2.0), t_end=60.0)
        for deviation in table.column(
                "max relative deviation at t_end"):
            assert deviation < 0.1
