"""Tests for the CLI and the repeated-measurement statistics."""

import pytest

from repro.cli import _experiments, build_parser, main
from repro.experiments import repeat, summarize_samples


class TestSummarizeSamples:
    def test_single_sample_zero_width(self):
        stat = summarize_samples([4.2])
        assert stat.mean == pytest.approx(4.2)
        assert stat.half_width == 0.0

    def test_five_runs_t_interval(self):
        samples = [10.0, 11.0, 9.0, 10.5, 9.5]
        stat = summarize_samples(samples)
        assert stat.mean == pytest.approx(10.0)
        # stdev ~= 0.7906, stderr ~= 0.3536, t(4) = 2.776.
        assert stat.half_width == pytest.approx(2.776 * 0.3536, rel=1e-3)
        assert stat.low < 10.0 < stat.high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples([])

    def test_str_format(self):
        text = str(summarize_samples([1.0, 2.0, 3.0]))
        assert "±" in text


class TestRepeat:
    def test_aggregates_metrics_across_seeds(self):
        def run(seed):
            return {"metric": float(seed), "constant": 7.0}

        stats = repeat(run, repetitions=3, base_seed=10)
        assert stats["metric"].mean == pytest.approx(11.0)
        assert stats["metric"].samples == [10.0, 11.0, 12.0]
        assert stats["constant"].half_width == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            repeat(lambda seed: {}, repetitions=0)

    def test_repeat_real_simulation_metrics_stable(self):
        """Scenario C single-path throughput: CI over 3 seeds is tight
        relative to the mean (the paper's error bars are small)."""
        from repro.experiments import scenario_c

        def run(seed):
            result = scenario_c.simulate(
                "lia", n1=5, n2=5, c1_mbps=1.0, c2_mbps=1.0,
                duration=10.0, warmup=6.0, seed=seed)
            return {"sp": result.singlepath_normalized}

        stats = repeat(run, repetitions=3)
        assert stats["sp"].half_width < 0.5 * stats["sp"].mean


class TestCli:
    def test_list_names(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1b", "table1", "fig13a", "fig17"):
            assert name in out

    def test_registry_names_are_callable(self):
        registry = _experiments(fast=True)
        assert all(callable(fn) for fn in registry.values())
        assert len(registry) >= 15

    def test_run_analysis_experiment(self, capsys):
        assert main(["run", "fig17"]) == 0
        out = capsys.readouterr().out
        assert "RTT" in out
        assert "fig17" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_run_multiple(self, capsys):
        assert main(["run", "fig4", "fig5b"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out and "Fig. 5(b)" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fast_flag_parses(self):
        args = build_parser().parse_args(["run", "all", "--fast"])
        assert args.fast is True
        assert args.experiments == ["all"]

    def test_jobs_and_backend_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "rtt-sweep", "--jobs", "4", "--backend", "batch"])
        assert args.jobs == 4
        assert args.backend == "batch"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x", "--backend", "turbo"])

    def test_registry_accepts_jobs_and_backend(self):
        registry = _experiments(fast=True, jobs=2, backend="batch")
        assert "rtt-sweep" in registry and "stability" in registry

    def test_algorithms_verb_prints_layer_table(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "balia" in out and "equilibrium" in out
        assert "reno,uncoupled" in out   # aliases rendered

    def test_run_algorithm_override(self, capsys):
        assert main(["run", "stability", "--algorithm", "balia"]) == 0
        assert "BALIA" in capsys.readouterr().out

    def test_run_algorithm_unknown_fails_before_running(self, capsys):
        assert main(["run", "stability", "--algorithm", "nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_run_algorithm_wrong_layer_fails_up_front(self, capsys):
        """stcp (packet-only) and epsilon (needs a param) are known
        names the selected experiments cannot construct — they must
        fail before any experiment runs, scoped to the layer each
        selected experiment actually uses."""
        assert main(["run", "stability", "--algorithm", "stcp"]) == 2
        assert "has no fluid layer" in capsys.readouterr().err
        assert main(["run", "rtt-sweep", "--algorithm", "epsilon"]) == 2
        assert "requires parameter(s) epsilon" in capsys.readouterr().err

    def test_run_algorithm_checked_only_for_selected_layers(self, capsys):
        """epsilon is equilibrium-only: fine for rtt-sweep's layer
        check to be the one that fires, but stability (fluid) must
        reject it while an unaffected experiment just warns."""
        assert main(["run", "fig17", "--algorithm", "balia"]) == 0
        assert "has no effect" in capsys.readouterr().err

    def test_bench_subcommand(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        output = tmp_path / "BENCH_sweep.json"
        assert main(["bench", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "batch backend" in out
        import json
        report = json.loads(output.read_text())
        assert report["smoke"] is True
        assert report["fluid_sweep"]["bitwise_equal"] is True
        assert report["engine"]["after_events_per_sec"] > 0
