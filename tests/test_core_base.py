"""Unit tests for the controller base class and subflow state."""

import pytest

from repro.core.base import MultipathController, SubflowState
from repro.core.reno import RenoController


class TestSubflowState:
    def test_defaults(self):
        state = SubflowState()
        assert state.cwnd == 1.0
        assert state.interloss_bytes == 0.0

    def test_record_ack_accumulates_l2(self):
        state = SubflowState()
        state.record_ack(1500.0)
        state.record_ack(3000.0)
        assert state.bytes_acked_since_loss == 4500.0
        assert state.interloss_bytes == 4500.0

    def test_record_loss_rolls_counters(self):
        state = SubflowState()
        state.record_ack(6000.0)
        state.record_loss()
        assert state.bytes_between_last_losses == 6000.0
        assert state.bytes_acked_since_loss == 0.0
        # l = max(l1, l2) keeps the pre-loss estimate right after a loss.
        assert state.interloss_bytes == 6000.0

    def test_interloss_is_max_of_both_counters(self):
        state = SubflowState()
        state.record_ack(3000.0)
        state.record_loss()
        state.record_ack(9000.0)
        assert state.interloss_bytes == 9000.0

    def test_second_loss_overwrites_l1(self):
        state = SubflowState()
        state.record_ack(9000.0)
        state.record_loss()
        state.record_ack(1500.0)
        state.record_loss()
        assert state.bytes_between_last_losses == 1500.0
        assert state.interloss_bytes == 1500.0


class TestControllerLifecycle:
    def test_register_and_states_order(self):
        ctrl = RenoController()
        s0, s1 = SubflowState(), SubflowState()
        ctrl.register_subflow(0, s0)
        ctrl.register_subflow(1, s1)
        assert ctrl.states() == [s0, s1]

    def test_duplicate_key_rejected(self):
        ctrl = RenoController()
        ctrl.register_subflow(0, SubflowState())
        with pytest.raises(ValueError):
            ctrl.register_subflow(0, SubflowState())

    def test_remove_subflow(self):
        ctrl = RenoController()
        ctrl.register_subflow(0, SubflowState())
        ctrl.remove_subflow(0)
        assert ctrl.states() == []

    def test_base_increment_not_implemented(self):
        ctrl = MultipathController()
        ctrl.register_subflow(0, SubflowState())
        with pytest.raises(NotImplementedError):
            ctrl.increase_increment(0)


class TestSharedDynamics:
    def test_decrease_halves_window(self):
        ctrl = RenoController()
        ctrl.register_subflow(0, SubflowState(cwnd=10.0))
        assert ctrl.decrease_on_loss(0) == 5.0

    def test_decrease_floors_at_one_mss(self):
        ctrl = RenoController()
        ctrl.register_subflow(0, SubflowState(cwnd=1.5))
        assert ctrl.decrease_on_loss(0) == 1.0

    def test_decrease_rolls_interloss_counters(self):
        ctrl = RenoController()
        state = SubflowState(cwnd=4.0)
        ctrl.register_subflow(0, state)
        ctrl.increase_on_ack(0, acked_packets=2)
        assert state.bytes_acked_since_loss == 3000.0
        ctrl.decrease_on_loss(0)
        assert state.bytes_between_last_losses == 3000.0
        assert state.bytes_acked_since_loss == 0.0

    def test_increase_applies_per_packet(self):
        ctrl = RenoController()
        state = SubflowState(cwnd=2.0)
        ctrl.register_subflow(0, state)
        # Two ACKed packets: w -> w + 1/2, then + 1/2.5.
        ctrl.increase_on_ack(0, acked_packets=2)
        assert state.cwnd == pytest.approx(2.0 + 0.5 + 1.0 / 2.5)

    def test_increase_records_acked_bytes(self):
        ctrl = RenoController()
        state = SubflowState(cwnd=2.0)
        ctrl.register_subflow(0, state)
        ctrl.increase_on_ack(0, acked_packets=1, acked_bytes=512.0)
        assert state.bytes_acked_since_loss == 512.0

    def test_window_never_below_minimum(self):
        ctrl = RenoController()
        state = SubflowState(cwnd=1.0)
        ctrl.register_subflow(0, state)
        for _ in range(5):
            ctrl.decrease_on_loss(0)
        assert state.cwnd == 1.0
