"""Integration tests for the FatTree and short-flow experiments."""

import math

import pytest

from repro.experiments import ablation, fattree, shortflows, traces


class TestFatTreePermutation:
    @pytest.fixture(scope="class")
    def runs(self):
        olia = fattree.run_permutation("olia", n_subflows=4, k=4,
                                       duration=2.0, warmup=1.0)
        tcp = fattree.run_permutation("tcp", k=4, duration=2.0,
                                      warmup=1.0)
        return olia, tcp

    def test_mptcp_exploits_path_diversity(self, runs):
        """Fig. 13(a): MPTCP reaches near-optimal, TCP does not."""
        olia, tcp = runs
        assert olia.percent_of_optimal > 80.0
        assert tcp.percent_of_optimal < 70.0
        assert olia.percent_of_optimal > tcp.percent_of_optimal + 15.0

    def test_per_flow_lists_complete(self, runs):
        olia, tcp = runs
        assert len(olia.flow_percents) == 16
        assert len(olia.ranked()) == 16
        assert olia.ranked() == sorted(olia.flow_percents)

    def test_mptcp_fairer_than_tcp(self, runs):
        """Fig. 13(b): the worst TCP flows starve; MPTCP's do not."""
        olia, tcp = runs
        assert min(olia.ranked()) > min(tcp.ranked())

    def test_more_subflows_help(self):
        two = fattree.run_permutation("olia", n_subflows=2, k=4,
                                      duration=2.0, warmup=1.0)
        four = fattree.run_permutation("olia", n_subflows=4, k=4,
                                       duration=2.0, warmup=1.0)
        assert four.percent_of_optimal >= two.percent_of_optimal - 5.0

    def test_figure13a_table(self):
        table = fattree.figure13a_table(k=4, subflow_counts=(2, 4),
                                        duration=1.5, warmup=0.5)
        assert len(table.rows) == 2
        tcp_col = table.column("TCP")
        olia_col = table.column("OLIA")
        assert all(o > t for o, t in zip(olia_col, tcp_col))


class TestShortFlows:
    @pytest.fixture(scope="class")
    def runs(self):
        lia = shortflows.run_dynamic("lia", k=4, duration=8.0, warmup=1.0)
        tcp = shortflows.run_dynamic("tcp", k=4, duration=8.0, warmup=1.0)
        return lia, tcp

    def test_flows_complete(self, runs):
        lia, _ = runs
        assert len(lia.completion_times) > 30
        assert not math.isnan(lia.mean_fct_ms)

    def test_tcp_low_utilization(self, runs):
        """Table III: regular TCP leaves the core underused."""
        lia, tcp = runs
        assert tcp.core_utilization < lia.core_utilization

    def test_tcp_fastest_short_flows(self, runs):
        """Table III: TCP long flows interfere least with short flows."""
        lia, tcp = runs
        assert tcp.mean_fct_ms < lia.mean_fct_ms * 1.1

    def test_histogram_sums_to_one(self, runs):
        lia, _ = runs
        hist = lia.histogram(bin_ms=50.0, max_ms=500.0)
        assert sum(frac for _, frac in hist) == pytest.approx(1.0)

    def test_table3_renders(self):
        table = shortflows.table3(k=4, duration=5.0, warmup=1.0,
                                  algorithms=("lia", "tcp"))
        text = str(table)
        assert "LIA" in text and "Regular TCP" in text


class TestTraces:
    def test_asymmetric_separation(self):
        """Fig. 8: OLIA's congested-path window below LIA's."""
        olia = traces.run_two_path_trace("olia", competing=(5, 10),
                                         duration=60.0)
        lia = traces.run_two_path_trace("lia", competing=(5, 10),
                                        duration=60.0)
        assert olia.mean_windows[1] < lia.mean_windows[1]
        # Both use the good path heavily.
        assert olia.mean_windows[0] > 5.0
        assert lia.mean_windows[0] > 5.0

    def test_symmetric_no_abandonment(self):
        """Fig. 7: both paths keep substantial windows under OLIA."""
        trace = traces.run_two_path_trace("olia", competing=(5, 5),
                                          duration=60.0)
        w1, w2 = trace.mean_windows
        assert w1 > 3.0 and w2 > 3.0
        assert trace.window_imbalance() < 0.6

    def test_trace_records_alphas(self):
        trace = traces.run_two_path_trace("olia", competing=(5, 5),
                                          duration=20.0)
        assert len(trace.alphas) == len(trace.windows)
        assert any(any(a != 0 for a in row) for row in trace.alphas)

    def test_lia_alphas_are_zero(self):
        trace = traces.run_two_path_trace("lia", competing=(5, 5),
                                          duration=20.0)
        assert all(all(a == 0 for a in row) for row in trace.alphas)


class TestAblation:
    def test_epsilon_sweep_monotone_aggression(self):
        """Larger epsilon -> multipath keeps more of the shared AP."""
        table = ablation.epsilon_sweep_table(epsilons=(0.0, 1.0, 2.0))
        shares = table.column("mp share of AP2 (%)")
        assert shares[0] < shares[1] < shares[2]
        sp_rates = table.column("sp rate (pkt/s)")
        assert sp_rates[0] > sp_rates[2]

    def test_flappiness_coupled_worse(self):
        table = ablation.flappiness_table(duration=60.0, seeds=(1, 2, 3))
        rows = {row[0]: row for row in table.rows}
        olia_onesided = rows["olia"][4]
        coupled_onesided = rows["coupled"][4]
        assert coupled_onesided > olia_onesided
