"""Integration tests for the FatTree and short-flow experiments."""

import math

import pytest

from repro.experiments import ablation, fattree, shortflows, traces


class TestFatTreePermutation:
    @pytest.fixture(scope="class")
    def runs(self):
        olia = fattree.run_permutation("olia", n_subflows=4, k=4,
                                       duration=2.0, warmup=1.0)
        tcp = fattree.run_permutation("tcp", k=4, duration=2.0,
                                      warmup=1.0)
        return olia, tcp

    def test_mptcp_exploits_path_diversity(self, runs):
        """Fig. 13(a): MPTCP reaches near-optimal, TCP does not."""
        olia, tcp = runs
        assert olia.percent_of_optimal > 80.0
        assert tcp.percent_of_optimal < 70.0
        assert olia.percent_of_optimal > tcp.percent_of_optimal + 15.0

    def test_per_flow_lists_complete(self, runs):
        olia, tcp = runs
        assert len(olia.flow_percents) == 16
        assert len(olia.ranked()) == 16
        assert olia.ranked() == sorted(olia.flow_percents)

    def test_mptcp_fairer_than_tcp(self, runs):
        """Fig. 13(b): the worst TCP flows starve; MPTCP's do not."""
        olia, tcp = runs
        assert min(olia.ranked()) > min(tcp.ranked())

    def test_more_subflows_help(self):
        two = fattree.run_permutation("olia", n_subflows=2, k=4,
                                      duration=2.0, warmup=1.0)
        four = fattree.run_permutation("olia", n_subflows=4, k=4,
                                       duration=2.0, warmup=1.0)
        assert four.percent_of_optimal >= two.percent_of_optimal - 5.0

    def test_figure13a_table(self):
        table = fattree.figure13a_table(k=4, subflow_counts=(2, 4),
                                        duration=1.5, warmup=0.5)
        assert len(table.rows) == 2
        tcp_col = table.column("TCP")
        olia_col = table.column("OLIA")
        assert all(o > t for o, t in zip(olia_col, tcp_col))


class TestShortFlows:
    @pytest.fixture(scope="class")
    def runs(self):
        lia = shortflows.run_dynamic("lia", k=4, duration=8.0, warmup=1.0)
        tcp = shortflows.run_dynamic("tcp", k=4, duration=8.0, warmup=1.0)
        return lia, tcp

    def test_flows_complete(self, runs):
        lia, _ = runs
        assert len(lia.completion_times) > 30
        assert not math.isnan(lia.mean_fct_ms)

    def test_tcp_low_utilization(self, runs):
        """Table III: regular TCP leaves the core underused."""
        lia, tcp = runs
        assert tcp.core_utilization < lia.core_utilization

    def test_tcp_fastest_short_flows(self, runs):
        """Table III: TCP long flows interfere least with short flows."""
        lia, tcp = runs
        assert tcp.mean_fct_ms < lia.mean_fct_ms * 1.1

    def test_histogram_sums_to_one(self, runs):
        lia, _ = runs
        hist = lia.histogram(bin_ms=50.0, max_ms=500.0)
        assert sum(frac for _, frac in hist) == pytest.approx(1.0)

    def test_table3_renders(self):
        table = shortflows.table3(k=4, duration=5.0, warmup=1.0,
                                  algorithms=("lia", "tcp"))
        text = str(table)
        assert "LIA" in text and "Regular TCP" in text


class TestTraces:
    def test_asymmetric_separation(self):
        """Fig. 8: OLIA's congested-path window below LIA's."""
        olia = traces.run_two_path_trace("olia", competing=(5, 10),
                                         duration=60.0)
        lia = traces.run_two_path_trace("lia", competing=(5, 10),
                                        duration=60.0)
        assert olia.mean_windows[1] < lia.mean_windows[1]
        # Both use the good path heavily.
        assert olia.mean_windows[0] > 5.0
        assert lia.mean_windows[0] > 5.0

    def test_symmetric_no_abandonment(self):
        """Fig. 7: both paths keep substantial windows under OLIA."""
        trace = traces.run_two_path_trace("olia", competing=(5, 5),
                                          duration=60.0)
        w1, w2 = trace.mean_windows
        assert w1 > 3.0 and w2 > 3.0
        assert trace.window_imbalance() < 0.6

    def test_trace_records_alphas(self):
        trace = traces.run_two_path_trace("olia", competing=(5, 5),
                                          duration=20.0)
        assert len(trace.alphas) == len(trace.windows)
        assert any(any(a != 0 for a in row) for row in trace.alphas)

    def test_lia_alphas_are_zero(self):
        trace = traces.run_two_path_trace("lia", competing=(5, 5),
                                          duration=20.0)
        assert all(all(a == 0 for a in row) for row in trace.alphas)


class TestAblation:
    def test_epsilon_sweep_monotone_aggression(self):
        """Larger epsilon -> multipath keeps more of the shared AP."""
        table = ablation.epsilon_sweep_table(epsilons=(0.0, 1.0, 2.0))
        shares = table.column("mp share of AP2 (%)")
        assert shares[0] < shares[1] < shares[2]
        sp_rates = table.column("sp rate (pkt/s)")
        assert sp_rates[0] > sp_rates[2]

    def test_epsilon_batch_backend_matches_loop_bitwise(self):
        """The whole epsilon grid solved as one per-point-rule batch
        (plus an OLIA batch for eps=0) must reproduce the sequential
        rows exactly — same floats, not approximately."""
        epsilons = (0.0, 0.5, 1.0, 1.5, 2.0)
        loop = ablation.epsilon_sweep_table(epsilons=epsilons,
                                            backend="loop")
        batch = ablation.epsilon_sweep_table(epsilons=epsilons,
                                             backend="batch")
        assert [tuple(r) for r in batch.rows] == \
            [tuple(r) for r in loop.rows]

    def test_epsilon_batch_composes_with_shard_and_cache(self, tmp_path):
        epsilons = (0.5, 1.0, 1.5, 2.0)
        for index in range(2):
            ablation.epsilon_sweep_table(epsilons=epsilons,
                                         backend="batch",
                                         cache_dir=tmp_path,
                                         shard=(index, 2))
        merged = ablation.epsilon_sweep_table(epsilons=epsilons,
                                              backend="loop",
                                              cache_dir=tmp_path)
        direct = ablation.epsilon_sweep_table(epsilons=epsilons,
                                              backend="loop")
        assert [tuple(r) for r in merged.rows] == \
            [tuple(r) for r in direct.rows]

    def test_epsilon_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="backend"):
            ablation.epsilon_sweep_table(backend="gpu")

    def test_epsilon_batch_rejects_negative_like_loop(self):
        """Backend parity extends to validation: both raise ValueError
        on a negative epsilon (not a KeyError from the batch grouping)."""
        for backend in ("loop", "batch"):
            with pytest.raises(ValueError, match="non-negative"):
                ablation.epsilon_sweep_table(epsilons=(-1.0, 0.5),
                                             backend=backend)

    def test_flappiness_coupled_worse(self):
        table = ablation.flappiness_table(duration=60.0, seeds=(1, 2, 3))
        rows = {row[0]: row for row in table.rows}
        olia_onesided = rows["olia"][4]
        coupled_onesided = rows["coupled"][4]
        assert coupled_onesided > olia_onesided
