"""Golden-trace regression corpus for the DES engine.

``tests/golden/*.trace`` pins the *complete* event trace of small
scenario-A runs — one line per dispatched event, ``repr(time)`` (exact
shortest-roundtrip float), the callback qualname, and the argument
count.  Both the pure-python engine and (when built) the compiled
engine must reproduce every file byte for byte: any change to event
ordering, timer arithmetic, RNG consumption, or callback plumbing in
either engine shows up as a diff against a file under version control,
with the first divergent line naming the exact event.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_golden_traces.py --regen

(which refuses to run if pure and compiled engines disagree with each
other).
"""

import random
from pathlib import Path

import pytest

from repro.experiments.runner import staggered_starts
from repro.sim import BulkTransfer, Simulator
from repro.sim.scheduler import COMPILED_AVAILABLE
from repro.topology.scenarios import build_scenario_a

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (file stem, seed, multipath algorithm) — tiny scenario-A variants.
CASES = [
    ("scenario_a_olia_seed1", 1, "olia"),
    ("scenario_a_olia_seed2", 2, "olia"),
    ("scenario_a_lia_seed1", 1, "lia"),
]

#: Simulated horizon (seconds); long enough for slow-start, losses and
#: congestion avoidance on both flow types, short enough to keep the
#: corpus a few hundred kilobytes.
UNTIL = 3.0


def _trace_lines(seed, algorithm, compiled):
    """The full event trace of one small scenario-A run, as lines."""
    lines = []

    def hook(time, fn, args):
        lines.append(
            f"{time!r} {getattr(fn, '__qualname__', repr(fn))} "
            f"{len(args)}")

    sim = Simulator("heap", trace=hook, compiled=compiled)
    rng = random.Random(seed)
    topo = build_scenario_a(sim, rng, n1=1, n2=1, c1_mbps=1.0,
                            c2_mbps=1.0)
    starts = staggered_starts(rng, 2)
    mp = BulkTransfer(sim, algorithm, topo.type1_paths,
                      start_time=starts[0], name="type1.0")
    sp = BulkTransfer(sim, "tcp", [topo.type2_path],
                      start_time=starts[1], name="type2.0")
    mp.start()
    sp.start()
    sim.run(until=UNTIL)
    return lines


def _golden(name):
    return (GOLDEN_DIR / f"{name}.trace").read_text().splitlines()


@pytest.mark.parametrize("name,seed,algorithm", CASES)
def test_pure_engine_reproduces_golden_trace(name, seed, algorithm):
    lines = _trace_lines(seed, algorithm, compiled=False)
    golden = _golden(name)
    assert len(lines) > 500, "degenerate run: corpus lost its coverage"
    # Compare a first-divergence-friendly way before the full equality.
    for i, (got, want) in enumerate(zip(lines, golden)):
        assert got == want, f"{name}: first divergence at event {i}"
    assert len(lines) == len(golden), \
        f"{name}: {len(lines)} events vs golden {len(golden)}"


@pytest.mark.skipif(not COMPILED_AVAILABLE,
                    reason="compiled kernels not built")
@pytest.mark.parametrize("name,seed,algorithm", CASES)
def test_compiled_engine_reproduces_golden_trace(name, seed, algorithm):
    lines = _trace_lines(seed, algorithm, compiled=True)
    golden = _golden(name)
    for i, (got, want) in enumerate(zip(lines, golden)):
        assert got == want, f"{name}: first divergence at event {i}"
    assert len(lines) == len(golden)


def _regen():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, seed, algorithm in CASES:
        pure = _trace_lines(seed, algorithm, compiled=False)
        if COMPILED_AVAILABLE:
            compiled = _trace_lines(seed, algorithm, compiled=True)
            if compiled != pure:
                raise SystemExit(
                    f"{name}: pure and compiled traces disagree — fix "
                    f"the engines before pinning a golden file")
        path = GOLDEN_DIR / f"{name}.trace"
        path.write_text("\n".join(pure) + "\n")
        print(f"wrote {path} ({len(pure)} events)")


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        _regen()
    else:
        raise SystemExit("usage: python tests/test_golden_traces.py --regen")
