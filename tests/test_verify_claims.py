"""Machine-checked claims — requires the optional z3-solver extra.

The entire module skips cleanly when z3 is absent (the same degradation
contract as the compiled-kernel extra): CI's z3 job runs it for real,
the pure-python-fallback job asserts the skip.
"""

import pytest

from repro.core import registry
from repro.verify import Z3_AVAILABLE
from repro.verify.claims import (
    check_cwnd_bounds,
    check_non_pareto,
    check_uniqueness,
    run_verification,
)

pytestmark = pytest.mark.skipif(
    not Z3_AVAILABLE, reason="optional z3-solver extra not installed")

#: Generous per-query ceiling; each query solves in well under a second.
TIMEOUT_MS = 120_000


def _model(name, **params):
    return registry.make_smt_model(name, **params)


# ---------------------------------------------------------------------------
# claim 1: non-pareto-optimal equilibria (the paper's headline result)
# ---------------------------------------------------------------------------

def test_lia_has_dominated_equilibrium_with_witness():
    res = check_non_pareto(_model("lia"), timeout_ms=TIMEOUT_MS)
    assert res.status == "certified", res.detail
    w = res.witness
    assert w is not None
    c1, c2 = w["capacity_link1"], w["capacity_link2"]
    # The witness equilibrium saturates both links (sharp loss).
    assert w["eq_private"] + w["eq_shared"] == pytest.approx(c1, rel=1e-6)
    assert w["eq_shared"] + w["eq_tcp"] == pytest.approx(c2, rel=1e-6)
    # The alternative is feasible...
    slack = 1 + 1e-9
    assert w["alt_private"] + w["alt_shared"] <= c1 * slack
    assert w["alt_shared"] + w["alt_tcp"] <= c2 * slack
    # ...gives the multipath user no less and the TCP user >= 1% more.
    assert (w["alt_private"] + w["alt_shared"]
            >= (w["eq_private"] + w["eq_shared"]) / slack)
    assert w["alt_tcp"] >= w["eq_tcp"] * 1.01 / slack
    # And the equilibrium really is LIA's: replay the witness losses
    # through the closed-form allocation rule.
    q = [w["loss_link1"], w["loss_link1"] + w["loss_link2"]]
    rtts = [w["rtt_multipath"]] * 2
    rates = registry.make_allocation_rule("lia")(q, rtts)
    assert float(rates[0]) == pytest.approx(w["eq_private"], rel=1e-4)
    assert float(rates[1]) == pytest.approx(w["eq_shared"], rel=1e-4)


def test_balia_has_dominated_equilibrium():
    res = check_non_pareto(_model("balia"), timeout_ms=TIMEOUT_MS)
    assert res.status == "certified", res.detail
    assert res.witness is not None


def test_olia_admits_no_dominated_equilibrium():
    # The contrast of Theorem 1: OLIA keeps the two-hop path at the
    # probing floor, so no capacity is wasted — unsat over the whole
    # bounded scenario box.
    res = check_non_pareto(_model("olia"), timeout_ms=TIMEOUT_MS)
    assert res.status == "certified", res.detail
    assert res.witness is None


# ---------------------------------------------------------------------------
# claim 2: fixed-point uniqueness over the declared ranges
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["tcp", "lia", "olia", "balia"])
def test_fixed_point_unique_over_ranges(name):
    res = check_uniqueness(_model(name), timeout_ms=TIMEOUT_MS)
    assert res.status == "certified", (res.detail, res.witness)


# ---------------------------------------------------------------------------
# claim 3: cwnd stays inside the DES loss-model bounds
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["tcp", "lia", "olia", "balia"])
def test_cwnd_bounds_hold_for_every_loss_pattern(name):
    res = check_cwnd_bounds(_model(name), timeout_ms=TIMEOUT_MS)
    assert res.status == "certified", (res.detail, res.witness)


# ---------------------------------------------------------------------------
# the driver: everything declared certifies
# ---------------------------------------------------------------------------

def test_run_verification_certifies_every_declared_claim():
    results = run_verification(timeout_ms=TIMEOUT_MS)
    assert results
    bad = [(r.algorithm, r.claim, r.status, r.detail)
           for r in results if r.status not in ("certified", "skip")]
    assert not bad, bad
    certified = {(r.algorithm, r.claim)
                 for r in results if r.status == "certified"}
    assert {("lia", "non-pareto"), ("olia", "non-pareto"),
            ("balia", "non-pareto"), ("lia", "uniqueness"),
            ("tcp", "cwnd-bounds")} <= certified
