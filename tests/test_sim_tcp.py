"""Behavioural tests for the packet-level TCP implementation."""

import random

import pytest

from repro.analysis import tcp_rate
from repro.sim import (
    DropTailQueue,
    Link,
    REDQueue,
    Simulator,
    single_path_tcp,
)
from repro.units import mbps_to_pps


def bottleneck(sim, mbps=1.0, delay=0.04, queue=None, name="bn"):
    """A single bottleneck link (default 1 Mbps, 40 ms one-way)."""
    if queue is None:
        queue = DropTailQueue(limit=100)
    return Link(sim, rate_bps=mbps * 1e6, delay=delay, queue=queue,
                name=name)


class TestBasicTransfer:
    def test_sized_flow_completes(self):
        sim = Simulator()
        link = bottleneck(sim)
        fcts = []
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04,
                               size_packets=20,
                               on_complete=fcts.append)
        flow.start(0.0)
        sim.run(until=20.0)
        assert flow.completed
        assert len(fcts) == 1
        # 20 packets via slow start over ~80ms RTT: a few RTTs.
        assert 0.1 < fcts[0] < 2.0

    def test_receiver_sees_contiguous_data(self):
        sim = Simulator()
        link = bottleneck(sim)
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04,
                               size_packets=50)
        flow.start(0.0)
        sim.run(until=30.0)
        assert flow.rcv_nxt == 50
        assert flow.acked_packets == 50

    def test_slow_start_doubles_window_each_rtt(self):
        sim = Simulator()
        # Plenty of bandwidth so no losses occur.
        link = bottleneck(sim, mbps=100.0)
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04)
        flow.start(0.0)
        sim.run(until=0.5)  # ~6 RTTs of ~81 ms
        assert flow.cwnd > 30  # exponential growth from 2

    def test_bulk_flow_fills_bottleneck(self):
        sim = Simulator()
        link = bottleneck(sim, mbps=1.0)
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04)
        flow.start(0.0)
        sim.run(until=60.0)
        goodput = flow.acked_packets / 60.0
        assert goodput > 0.75 * mbps_to_pps(1.0)

    def test_rtt_estimate_tracks_path(self):
        sim = Simulator()
        link = bottleneck(sim, mbps=10.0)
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04,
                               size_packets=100)
        flow.start(0.0)
        sim.run(until=10.0)
        # Base RTT 80 ms + ~1.2 ms service; queueing adds some more.
        assert 0.08 <= flow.srtt < 0.2


class TestLossRecovery:
    def test_fast_retransmit_recovers(self):
        sim = Simulator()
        link = bottleneck(sim, mbps=1.0, queue=DropTailQueue(limit=10))
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04)
        flow.start(0.0)
        sim.run(until=60.0)
        assert link.stats.drops > 0
        assert flow.retransmits > 0
        # Despite losses the flow keeps the link busy.
        assert flow.acked_packets / 60.0 > 0.7 * mbps_to_pps(1.0)

    def test_no_data_lost_or_duplicated(self):
        """Receiver's next-expected always equals sender's snd_una."""
        sim = Simulator()
        link = bottleneck(sim, mbps=1.0, queue=DropTailQueue(limit=6))
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04,
                               size_packets=500)
        flow.start(0.0)
        sim.run(until=60.0)
        assert flow.completed
        assert flow.rcv_nxt == 500
        assert flow.snd_una == 500

    def test_timeout_recovery_from_tiny_window(self):
        """With a 2-packet queue, dupacks are rare: RTO must save us."""
        sim = Simulator()
        link = bottleneck(sim, mbps=0.3, queue=DropTailQueue(limit=2))
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04,
                               size_packets=120)
        flow.start(0.0)
        sim.run(until=120.0)
        assert flow.completed

    def test_window_halves_on_fast_retransmit(self):
        sim = Simulator()
        link = bottleneck(sim, mbps=1.0, queue=DropTailQueue(limit=20))
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04)
        flow.start(0.0)
        max_window = 0.0

        def watch():
            nonlocal max_window
            max_window = max(max_window, flow.cwnd)
            sim.schedule(0.05, watch)

        sim.schedule(0.0, watch)
        sim.run(until=40.0)
        # After losses the window must sit well below its slow-start peak.
        assert flow.retransmits > 0
        assert flow.cwnd < max_window


class TestFairness:
    def test_two_flows_share_bottleneck(self):
        sim = Simulator()
        rng = random.Random(7)
        link = bottleneck(sim, mbps=2.0,
                          queue=REDQueue.for_capacity_mbps(rng, 2.0))
        f1 = single_path_tcp(sim, (link,), reverse_delay=0.04, name="f1")
        f2 = single_path_tcp(sim, (link,), reverse_delay=0.04, name="f2")
        f1.start(0.0)
        f2.start(0.5)
        sim.run(until=120.0)
        g1 = f1.acked_packets / 120.0
        g2 = f2.acked_packets / 120.0
        assert g1 + g2 > 0.7 * mbps_to_pps(2.0)
        assert 0.5 < g1 / g2 < 2.0

    def test_red_loss_matches_tcp_formula(self):
        """Measured goodput tracks sqrt(2/p)/rtt for the measured p."""
        sim = Simulator()
        rng = random.Random(3)
        link = bottleneck(sim, mbps=2.0,
                          queue=REDQueue.for_capacity_mbps(rng, 2.0))
        flow = single_path_tcp(sim, (link,), reverse_delay=0.04)
        flow.start(0.0)
        sim.run(until=30.0)  # warmup
        link.stats.reset(sim.now)
        base = flow.acked_packets
        sim.run(until=150.0)
        goodput = (flow.acked_packets - base) / 120.0
        p = link.stats.loss_probability
        assert p > 0
        predicted = tcp_rate(p, flow.srtt)
        assert goodput == pytest.approx(predicted, rel=0.4)


class TestValidation:
    def test_empty_path_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            single_path_tcp(sim, (), reverse_delay=0.04)

    def test_negative_reverse_delay_rejected(self):
        sim = Simulator()
        link = bottleneck(sim)
        with pytest.raises(ValueError):
            single_path_tcp(sim, (link,), reverse_delay=-0.1)
