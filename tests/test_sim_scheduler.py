"""Unit and property tests for the scheduler backends and the Timer.

The timer wheel's correctness contract is *exact order equivalence*
with the binary heap: any interleaving of pushes and pops must come
back in identical ``(time, seq)`` order.  The randomized tests below
drive both backends with the same operation streams — mixed horizons
(sub-tick to overflow-range), bursts, draining runs — and require
identical pop sequences.
"""

import random

import pytest

from repro.sim import Simulator, Timer
from repro.sim.scheduler import HeapScheduler, WheelScheduler


def _entry(time, seq):
    # Same shape the engine uses; fn/args/event unused by the scheduler.
    return (time, seq, None, (), None)


class TestWheelAgainstHeap:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_push_pop_interleaving(self, seed):
        rng = random.Random(seed)
        wheel = WheelScheduler(tick=1e-3)
        heap = HeapScheduler()
        seq = 0
        now = 0.0
        for _ in range(3000):
            if rng.random() < 0.6:
                # Mixed horizons: same-tick, near, far, overflow-range.
                horizon = rng.choice([1e-4, 5e-3, 0.3, 2.0, 80.0, 2e4])
                time = now + rng.random() * horizon
                seq += 1
                wheel.push(_entry(time, seq))
                heap.push(_entry(time, seq))
            else:
                a, b = wheel.pop_next(), heap.pop_next()
                assert a == b
                if a is not None:
                    assert a[0] >= now
                    now = a[0]
        # Drain completely; the tails must match too.
        while True:
            a, b = wheel.pop_next(), heap.pop_next()
            assert a == b
            if a is None:
                break

    @pytest.mark.parametrize("seed", range(4))
    def test_pop_due_equivalence(self, seed):
        rng = random.Random(100 + seed)
        wheel = WheelScheduler(tick=1e-3)
        heap = HeapScheduler()
        seq = 0
        now = 0.0
        for _ in range(60):
            for _ in range(rng.randrange(40)):
                time = now + rng.random() * rng.choice([1e-3, 0.5, 40.0])
                seq += 1
                wheel.push(_entry(time, seq))
                heap.push(_entry(time, seq))
            until = now + rng.random() * 5.0
            while True:
                a, b = wheel.pop_due(until), heap.pop_due(until)
                assert a == b
                if a is None:
                    break
                now = a[0]
            now = max(now, until)

    def test_fifo_within_one_tick(self):
        wheel = WheelScheduler(tick=1e-3)
        for seq in range(10):
            wheel.push(_entry(0.0005, seq))
        order = [wheel.pop_next()[1] for _ in range(10)]
        assert order == list(range(10))

    def test_far_future_entries_round_trip_the_overflow(self):
        wheel = WheelScheduler(tick=1e-3)
        # Beyond the level-2 span (~4.6 h at 1 ms ticks) -> overflow heap.
        wheel.push(_entry(50_000.0, 1))
        wheel.push(_entry(20_000.0, 2))
        wheel.push(_entry(0.01, 3))
        assert [wheel.pop_next()[1] for _ in range(3)] == [3, 2, 1]
        assert wheel.pop_next() is None

    @pytest.mark.parametrize("far", [0.3, 7.0, 65.0, 66.0, 4000.0,
                                     16000.0, 17000.0, 60000.0])
    def test_lone_far_entry_jumps_stay_ordered(self, far):
        """Horizons straddling every level/window boundary: the
        occupancy-mask jumps must not overshoot entries still parked in
        a parent slot (regression test for the window-crossing jump)."""
        wheel = WheelScheduler(tick=1e-3)
        heap = HeapScheduler()
        for seq, time in enumerate([0.001, far, far + 1e-4, far * 2]):
            wheel.push(_entry(time, seq))
            heap.push(_entry(time, seq))
        while True:
            a, b = wheel.pop_next(), heap.pop_next()
            assert a == b
            if a is None:
                break

    def test_push_behind_cursor_still_ordered(self):
        """After a far hunt, near pushes land behind the cursor (the
        documented heap-degeneration regime) but order is preserved."""
        wheel = WheelScheduler(tick=1e-3)
        wheel.push(_entry(100.0, 1))
        assert wheel.pop_due(1.0) is None      # hunts the cursor forward
        wheel.push(_entry(0.5, 2))
        wheel.push(_entry(0.25, 3))
        assert wheel.pop_due(1.0)[1] == 3
        assert wheel.pop_due(1.0)[1] == 2
        assert wheel.pop_due(1.0) is None
        assert wheel.pop_next()[1] == 1

    def test_len_tracks_pushes_and_pops(self):
        wheel = WheelScheduler(tick=1e-3)
        assert len(wheel) == 0
        for seq, time in enumerate([0.1, 3.0, 90.0, 1e5]):
            wheel.push(_entry(time, seq))
        assert len(wheel) == 4
        wheel.pop_next()
        assert len(wheel) == 3

    def test_rejects_non_positive_tick(self):
        with pytest.raises(ValueError):
            WheelScheduler(tick=0.0)


class TestSimulatorBackendSelection:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
        assert Simulator().scheduler_name == "auto"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
        assert Simulator().scheduler_name == "heap"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
        assert Simulator("wheel").scheduler_name == "wheel"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="fibheap"):
            Simulator("fibheap")


class TestTimer:
    def test_fires_at_deadline(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.arm(1.5)
        assert timer.armed and timer.deadline == 1.5
        sim.run(until=2.0)
        assert fired == [1.5]
        assert not timer.armed

    def test_carries_bound_args(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(fired.append, "payload")
        timer.arm(0.1)
        sim.run(until=1.0)
        assert fired == ["payload"]

    def test_rearm_later_moves_the_deadline(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.arm(1.0)
        timer.arm(3.0)          # extend before the first wakeup
        sim.run(until=10.0)
        assert fired == [3.0]

    def test_rearm_extends_without_scheduler_traffic(self):
        sim = Simulator()
        timer = sim.timer(lambda: None)
        timer.arm(1.0)
        pending = sim.pending_events
        for _ in range(100):
            timer.arm(1.0)      # monotone rearms reuse the wakeup
        assert sim.pending_events == pending

    def test_cancel_suppresses_firing(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(fired.append, 1)
        timer.arm(1.0)
        timer.cancel()
        assert not timer.armed
        sim.run(until=2.0)
        assert fired == []

    def test_rearm_from_inside_callback(self):
        sim = Simulator()
        fired = []

        def periodic():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.arm(1.0)

        timer = sim.timer(periodic)
        timer.arm(1.0)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_rearm_after_cancel(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.arm(1.0)
        timer.cancel()
        sim.run(until=2.0)
        timer.arm(1.0)
        sim.run(until=5.0)
        assert fired == [3.0]

    def test_earlier_rearm_fires_at_pending_wakeup(self):
        """Documented lazy contract: a deadline moved *earlier* than the
        pending wakeup takes effect at that wakeup (never before the
        live deadline, possibly later)."""
        sim = Simulator()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.arm(2.0)
        timer.arm(1.0)
        sim.run(until=3.0)
        assert fired == [2.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        timer = sim.timer(lambda: None)
        with pytest.raises(ValueError):
            timer.arm(-0.5)

    def test_arm_in_past_rejected(self):
        sim = Simulator()
        sim.run(until=5.0)
        timer = sim.timer(lambda: None)
        with pytest.raises(ValueError):
            timer.arm_at(1.0)

    @pytest.mark.parametrize("backend", ["heap", "wheel", "auto"])
    def test_same_firing_sequence_on_both_backends(self, backend):
        sim = Simulator(backend)
        fired = []
        timers = [sim.timer(fired.append, i) for i in range(5)]
        for i, timer in enumerate(timers):
            timer.arm(0.1 * (i + 1))
        timers[0].arm(0.55)     # extend past everyone else
        timers[3].cancel()
        sim.run(until=1.0)
        assert fired == [1, 2, 4, 0]

    def test_timer_is_a_public_type(self):
        sim = Simulator()
        assert isinstance(sim.timer(lambda: None), Timer)
