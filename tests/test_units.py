"""Unit tests for unit conversions."""

import pytest

from repro import units


class TestConversions:
    def test_mbps_to_pps_round_trip(self):
        assert units.pps_to_mbps(units.mbps_to_pps(10.0)) == pytest.approx(10.0)

    def test_one_mbps_in_packets(self):
        # 1 Mbps / (1500 B * 8 b/B) = 83.33 pkt/s
        assert units.mbps_to_pps(1.0) == pytest.approx(83.3333, rel=1e-4)

    def test_custom_mss(self):
        assert units.mbps_to_pps(1.0, mss_bytes=125) == pytest.approx(1000.0)

    def test_bytes_to_packets_ceils(self):
        assert units.bytes_to_packets(1) == 1
        assert units.bytes_to_packets(1500) == 1
        assert units.bytes_to_packets(1501) == 2
        assert units.bytes_to_packets(70_000) == 47

    def test_bytes_to_packets_nonpositive(self):
        assert units.bytes_to_packets(0) == 0
        assert units.bytes_to_packets(-5) == 0

    def test_ms_helper(self):
        assert units.ms(150) == pytest.approx(0.15)

    def test_constants(self):
        assert units.MSS_BYTES == 1500
        assert units.MSS_BITS == 12000
