"""SMT-certified fixed points vs the numeric equilibrium layer.

The verification layer's numeric contract: a z3 model of an algorithm's
fixed-point conditions, solved at a concrete ``(p, rtt)`` point, must
reproduce what the equilibrium layer computes — both the closed-form
allocation rule and the damped ``solve_fixed_point`` iteration on real
topologies.  Requires the optional z3 extra; skips cleanly without it.
"""

import math
import random

import numpy as np
import pytest

from repro.core import registry
from repro.fluid import FluidNetwork, SharpLoss, solve_fixed_point
from repro.units import mbps_to_pps
from repro.verify import Z3_AVAILABLE
from repro.verify.claims import certified_fixed_point

pytestmark = pytest.mark.skipif(
    not Z3_AVAILABLE, reason="optional z3-solver extra not installed")

SMT_ALGOS = ("tcp", "lia", "olia", "balia")
TIMEOUT_MS = 60_000

#: Sampled (p, rtt) points / topologies per algorithm.
N_POINTS = 16


def _sampled_points(name, n=N_POINTS):
    """Tie-free two-route (p, rtt) points, deterministic per algorithm.

    The second route's loss is drawn a clear factor above the first so
    the best-path TCP rates are separated by >= 10% — OLIA's and
    BALIA's tied-best sets are then unambiguous and the closed-form
    rule, the damped solver and the SMT model must all agree exactly.
    """
    rng = random.Random(f"cross-check:{name}")
    points = []
    while len(points) < n:
        p0 = rng.uniform(0.005, 0.03)
        p1 = p0 * rng.uniform(1.5, 4.0)
        rtt0 = rng.uniform(0.04, 0.25)
        rtt1 = rng.uniform(0.04, 0.25)
        t0 = math.sqrt(2 / p0) / rtt0
        t1 = math.sqrt(2 / p1) / rtt1
        if abs(t0 - t1) < 0.1 * max(t0, t1):
            continue                      # too close to a tie: redraw
        points.append(((p0, p1), (rtt0, rtt1)))
    return points


@pytest.mark.parametrize("name", SMT_ALGOS)
def test_certified_point_matches_allocation_rule(name):
    """certified_fixed_point == the closed-form rule, point by point."""
    rule = registry.make_allocation_rule(name)
    for p, rtt in _sampled_points(name):
        p_used = p[:1] if name == "tcp" else p
        rtt_used = rtt[:1] if name == "tcp" else rtt
        certified = certified_fixed_point(name, p_used, rtt_used,
                                          timeout_ms=TIMEOUT_MS)
        expected = np.asarray(rule(np.asarray(p_used),
                                   np.asarray(rtt_used)), dtype=float)
        scale = max(float(expected.max()), 1e-9)
        for got, want in zip(certified, expected):
            assert got == pytest.approx(float(want), rel=1e-6,
                                        abs=1e-9 * scale), \
                (name, p_used, rtt_used, certified, expected)


def _two_link_network(algorithm, *, c1_pps, c2_pps, rtt_mp, rtt_tcp,
                      n_tcp):
    """Scenario-A shape: mp user on [l1] and [l1,l2], TCP users on [l2]."""
    net = FluidNetwork()
    l1 = net.add_link(SharpLoss(capacity=c1_pps))
    l2 = net.add_link(SharpLoss(capacity=c2_pps))
    rules = {}
    mp = net.add_user("mp")
    net.add_route(mp, [l1], rtt=rtt_mp)
    net.add_route(mp, [l1, l2], rtt=rtt_mp)
    rules[mp] = algorithm
    tcp_routes = []
    for i in range(n_tcp):
        user = net.add_user(f"tcp{i}")
        tcp_routes.append(net.add_route(user, [l2], rtt=rtt_tcp))
        rules[user] = "tcp"
    return net, rules, tcp_routes


@pytest.mark.parametrize("name", SMT_ALGOS)
def test_certified_point_matches_solve_fixed_point(name):
    """End to end: solve a real topology, certify its losses in z3.

    ``solve_fixed_point`` produces equilibrium route losses; pinning
    those losses in the SMT model must certify the *same* rate vector
    the damped iteration converged to — the fourth layer agreeing with
    the third on every sampled topology.
    """
    rng = random.Random(f"topologies:{name}")
    checked = 0
    while checked < N_POINTS:
        net, rules, tcp_routes = _two_link_network(
            name,
            c1_pps=mbps_to_pps(rng.uniform(0.8, 3.0)),
            c2_pps=mbps_to_pps(rng.uniform(0.8, 3.0)),
            rtt_mp=rng.uniform(0.05, 0.25),
            rtt_tcp=rng.uniform(0.05, 0.25),
            n_tcp=rng.randint(1, 3))
        result = solve_fixed_point(net, rules, floor_packets=0.0)
        assert result.converged
        rtts = net.rtt_array()
        q = result.route_loss
        t = np.sqrt(2.0 / np.maximum(q[:2], 1e-15)) / rtts[:2]
        if abs(t[0] - t[1]) < 0.05 * float(t.max()):
            continue                      # near-tie topology: redraw
        checked += 1
        # The multipath user's two routes.
        certified = certified_fixed_point(
            name, [float(q[0]), float(q[1])],
            [float(rtts[0]), float(rtts[1])], timeout_ms=TIMEOUT_MS)
        scale = max(float(np.max(result.rates[:2])), 1e-9)
        for got, want in zip(certified, result.rates[:2]):
            assert got == pytest.approx(float(want), rel=1e-4,
                                        abs=1e-5 * scale), \
                (name, checked, certified, result.rates[:2])
        # And one single-path competitor through the TCP model.
        route = tcp_routes[0]
        tcp_cert = certified_fixed_point(
            "tcp", [float(q[route])], [float(rtts[route])],
            timeout_ms=TIMEOUT_MS)
        assert tcp_cert[0] == pytest.approx(
            float(result.rates[route]), rel=1e-4,
            abs=1e-5 * float(result.rates[route]))
