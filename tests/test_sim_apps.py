"""Tests for traffic applications and monitors."""

import random

import pytest

from repro.sim import (
    BulkTransfer,
    DropTailQueue,
    FlowMeter,
    Link,
    PathSpec,
    ShortFlowSource,
    Simulator,
    WindowTracer,
)
from repro.sim.mptcp import MptcpConnection


def fat_link(sim, mbps=10.0):
    return Link(sim, rate_bps=mbps * 1e6, delay=0.005,
                queue=DropTailQueue(limit=200))


class TestBulkTransfer:
    def test_single_path_tcp_variant(self):
        sim = Simulator()
        link = fat_link(sim)
        bulk = BulkTransfer(sim, "tcp", [PathSpec((link,), 0.005)])
        bulk.start()
        sim.run(until=5.0)
        assert bulk.acked_packets > 100

    def test_mptcp_variant(self):
        sim = Simulator()
        l1, l2 = fat_link(sim), fat_link(sim)
        bulk = BulkTransfer(sim, "olia", [PathSpec((l1,), 0.005),
                                          PathSpec((l2,), 0.005)])
        bulk.start()
        sim.run(until=5.0)
        assert isinstance(bulk.connection, MptcpConnection)
        assert bulk.acked_packets > 100

    def test_start_time_respected(self):
        sim = Simulator()
        link = fat_link(sim)
        bulk = BulkTransfer(sim, "tcp", [PathSpec((link,), 0.005)],
                            start_time=2.0)
        bulk.start()
        sim.run(until=1.9)
        assert bulk.acked_packets == 0
        sim.run(until=4.0)
        assert bulk.acked_packets > 0

    def test_goodput_helper(self):
        sim = Simulator()
        link = fat_link(sim)
        bulk = BulkTransfer(sim, "tcp", [PathSpec((link,), 0.005)])
        bulk.start()
        sim.run(until=2.0)
        baseline = bulk.acked_packets
        sim.run(until=4.0)
        pps = bulk.goodput_pps(2.0, 4.0, baseline)
        assert pps > 0


class TestShortFlows:
    def test_flows_complete_and_record_fct(self):
        sim = Simulator()
        link = fat_link(sim, mbps=10.0)
        rng = random.Random(5)
        source = ShortFlowSource(
            sim, rng, lambda: ((link,), 0.005),
            mean_interarrival=0.2, flow_bytes=70_000)
        source.start(0.0)
        sim.run(until=10.0)
        source.stop()
        sim.run(until=15.0)
        assert source.flows_started > 20
        assert len(source.completion_times) >= source.flows_started - 2
        assert 0 < source.mean_fct() < 2.0

    def test_poisson_arrival_count(self):
        """~50 arrivals expected in 10 s at one per 200 ms."""
        sim = Simulator()
        link = fat_link(sim, mbps=100.0)
        rng = random.Random(11)
        source = ShortFlowSource(sim, rng, lambda: ((link,), 0.005))
        source.start(0.0)
        sim.run(until=10.0)
        assert 25 <= source.flows_started <= 85

    def test_fct_grows_under_congestion(self):
        def mean_fct(background_mbps):
            sim = Simulator()
            link = fat_link(sim, mbps=10.0)
            if background_mbps:
                bulk = BulkTransfer(sim, "tcp", [PathSpec((link,), 0.005)])
                bulk.start()
            rng = random.Random(5)
            source = ShortFlowSource(sim, rng, lambda: ((link,), 0.005))
            source.start(1.0)
            sim.run(until=20.0)
            return source.mean_fct()

        assert mean_fct(background_mbps=10) > mean_fct(background_mbps=0)

    def test_validation(self):
        sim = Simulator()
        rng = random.Random(1)
        with pytest.raises(ValueError):
            ShortFlowSource(sim, rng, lambda: ((), 0.0),
                            mean_interarrival=0.0)
        with pytest.raises(ValueError):
            ShortFlowSource(sim, rng, lambda: ((), 0.0), flow_bytes=0)

    def test_stop_halts_arrivals(self):
        sim = Simulator()
        link = fat_link(sim)
        rng = random.Random(5)
        source = ShortFlowSource(sim, rng, lambda: ((link,), 0.005))
        source.start(0.0)
        sim.run(until=5.0)
        source.stop()
        count = source.flows_started
        sim.run(until=10.0)
        assert source.flows_started == count


class TestMonitors:
    def test_flow_meter_reset_and_rates(self):
        sim = Simulator()
        link = fat_link(sim)
        bulk = BulkTransfer(sim, "tcp", [PathSpec((link,), 0.005)])
        bulk.start()
        meter = FlowMeter(sim, {"bulk": bulk})
        sim.run(until=2.0)
        meter.reset()
        sim.run(until=4.0)
        rates = meter.goodput_pps()
        assert rates["bulk"] > 0
        assert meter.total_pps() == pytest.approx(rates["bulk"])

    def test_window_tracer_period_and_stop(self):
        sim = Simulator()
        l1, l2 = fat_link(sim), fat_link(sim)
        conn = MptcpConnection(sim, "olia", [PathSpec((l1,), 0.005),
                                             PathSpec((l2,), 0.005)])
        conn.start(0.0)
        tracer = WindowTracer(sim, conn, period=0.5)
        tracer.start()
        sim.run(until=4.9)
        tracer.stop()
        sim.run(until=10.0)
        assert 9 <= len(tracer.times) <= 11
        assert all(len(w) == 2 for w in tracer.windows)

    def test_window_tracer_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            WindowTracer(sim, None, period=0.0)
