"""The adaptive scheduler backend: migration, calibration, identity.

Three layers of guarantees:

* scheduler level — :class:`AdaptiveScheduler` pops in exactly the
  heap's ``(time, seq)`` order through any number of heap/wheel
  migrations (randomized interleavings with thresholds tuned to force
  frequent switching);
* engine level — ``scheduler="auto"`` honours the ``REPRO_SIM_SCHEDULER``
  override, rejects unknown names loudly (argument *and* environment),
  and reports the active backend;
* scenario level — a generated workload sized to straddle the promote
  threshold runs trace-identically on auto, heap and wheel, *and* the
  auto run really migrates (the equivalence is not vacuous).
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.scheduler import (
    AUTO_DEMOTE_PENDING,
    AUTO_PROMOTE_PENDING,
    CALIBRATE_MAX_PROMOTE,
    CALIBRATE_MIN_PROMOTE,
    COMPILED_AVAILABLE,
    AdaptiveScheduler,
    HeapScheduler,
    WheelScheduler,
    calibrate,
    calibrated_thresholds,
)
from repro.topology import generate_preset


def _entry(time, seq):
    return (time, seq, None, (), None)


class TestAdaptiveScheduler:
    def test_starts_on_the_heap(self):
        sched = AdaptiveScheduler()
        assert sched.backend_name == "heap"
        assert isinstance(sched.inner, HeapScheduler)
        assert sched.migrations == 0

    def test_promotes_past_threshold_and_demotes_back(self):
        sched = AdaptiveScheduler(promote=64, demote=16, period=8)
        for seq in range(80):
            sched.push(_entry(1.0 + seq * 1e-3, seq))
        # Population sampling happens on pops; drain past the sample
        # period so the promotion triggers.
        for _ in range(16):
            sched.pop_next()
        assert sched.backend_name == "wheel"
        assert isinstance(sched.inner, WheelScheduler)
        assert sched.migrations == 1
        while len(sched) > 8:
            sched.pop_next()
        for _ in range(8):            # force a few more samples
            sched.push(_entry(100.0, 1000 + _))
            sched.pop_next()
        assert sched.backend_name == "heap"
        assert sched.migrations == 2

    def test_hysteresis_band_prevents_thrash(self):
        sched = AdaptiveScheduler(promote=64, demote=16, period=1)
        # Sit between the thresholds: never migrates in either direction.
        for seq in range(40):
            sched.push(_entry(1.0 + seq * 1e-3, seq))
        for _ in range(30):
            entry = sched.pop_next()
            sched.push(_entry(entry[0] + 1.0, 100 + _))
        assert sched.migrations == 0
        assert sched.backend_name == "heap"

    @pytest.mark.parametrize("seed", range(6))
    def test_pop_order_identical_to_heap_across_migrations(self, seed):
        rng = random.Random(seed)
        auto = AdaptiveScheduler(promote=48, demote=12, period=4)
        heap = HeapScheduler()
        seq = 0
        now = 0.0
        for _ in range(4000):
            if rng.random() < 0.55:
                horizon = rng.choice([1e-4, 5e-3, 0.3, 2.0, 80.0, 2e4])
                time = now + rng.random() * horizon
                seq += 1
                auto.push(_entry(time, seq))
                heap.push(_entry(time, seq))
            else:
                a, b = auto.pop_next(), heap.pop_next()
                assert a == b
                if a is not None:
                    now = a[0]
        while True:
            a, b = auto.pop_next(), heap.pop_next()
            assert a == b
            if a is None:
                break
        # The thresholds above are tuned so the stream actually crossed
        # the band — otherwise this test proves nothing about migration.
        assert auto.migrations >= 2

    def test_len_survives_migration(self):
        sched = AdaptiveScheduler(promote=8, demote=2, period=1)
        for seq in range(12):
            sched.push(_entry(1.0 + seq, seq))
        sched.pop_next()
        assert sched.backend_name == "wheel"
        assert len(sched) == 11

    def test_dump_refill_round_trip(self):
        wheel = WheelScheduler(tick=1e-3)
        entries = [_entry(t, i) for i, t in
                   enumerate([0.5, 0.0001, 3.0, 90.0, 1e5, 0.5])]
        for entry in entries:
            wheel.push(entry)
        heap = HeapScheduler()
        heap.refill(wheel.dump())
        assert len(wheel) == 0 and wheel.pop_next() is None
        popped = [heap.pop_next() for _ in range(len(entries))]
        assert popped == sorted(entries, key=lambda e: (e[0], e[1]))

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            AdaptiveScheduler(promote=16, demote=16)
        with pytest.raises(ValueError, match="period"):
            AdaptiveScheduler(period=0)
        with pytest.raises(ValueError, match="tick"):
            AdaptiveScheduler(tick=0.0)

    def test_default_thresholds_are_the_calibrated_band(self):
        assert 0 < AUTO_DEMOTE_PENDING < AUTO_PROMOTE_PENDING


class TestCalibration:
    """The startup micro-calibration of the heap<->wheel crossover."""

    def test_thresholds_positive_and_ordered(self):
        promote, demote = calibrated_thresholds()
        assert 0 < demote < promote
        assert CALIBRATE_MIN_PROMOTE <= promote <= CALIBRATE_MAX_PROMOTE

    def test_measured_calibration_reports_costs(self):
        info = calibrate()
        assert info["source"] in ("measured", "noisy")
        if info["source"] == "measured":
            # The fitted model and its inputs are all recorded.
            assert info["heap_ns_small"] > 0
            assert info["heap_ns_large"] > 0
            assert info["wheel_ns"] > 0
            assert info["crossover"] > 0
            assert info["demote"] == info["promote"] // 4

    def test_disabled_env_restores_documented_constants(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CALIBRATE", "0")
        assert calibrated_thresholds() == (AUTO_PROMOTE_PENDING,
                                           AUTO_DEMOTE_PENDING)
        assert calibrate()["source"] == "disabled"
        # The compiled cost model falls back identically.
        assert calibrated_thresholds(compiled=True) == (
            AUTO_PROMOTE_PENDING, AUTO_DEMOTE_PENDING)

    def test_adaptive_defaults_to_the_calibrated_band(self):
        sched = AdaptiveScheduler()
        promote, demote = calibrated_thresholds()
        assert sched.promote_threshold == promote
        assert sched.demote_threshold == demote

    def test_explicit_arguments_beat_calibration(self):
        sched = AdaptiveScheduler(promote=64, demote=16)
        assert sched.promote_threshold == 64
        assert sched.demote_threshold == 16

    @pytest.mark.skipif(not COMPILED_AVAILABLE,
                        reason="compiled kernels not built")
    def test_compiled_cost_model_is_ordered_too(self):
        promote, demote = calibrated_thresholds(compiled=True)
        assert 0 < demote < promote


class TestEnvOverride:
    def test_auto_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "auto")
        sim = Simulator()
        assert sim.scheduler_name == "auto"
        assert sim.active_backend == "heap"

    @pytest.mark.parametrize("backend", ["heap", "wheel"])
    def test_env_pins_a_fixed_backend(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", backend)
        sim = Simulator()
        assert sim.scheduler_name == backend
        assert sim.active_backend == backend

    def test_unknown_env_value_fails_loudly(self, monkeypatch):
        """A typo'd REPRO_SIM_SCHEDULER must not silently fall back to
        the default — every measurement made under it would lie."""
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "wheeel")
        with pytest.raises(ValueError) as excinfo:
            Simulator()
        message = str(excinfo.value)
        assert "wheeel" in message
        assert "REPRO_SIM_SCHEDULER" in message
        assert "auto" in message       # the error lists the valid names

    def test_empty_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "")
        assert Simulator().scheduler_name == "auto"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "wheeel")
        assert Simulator("heap").scheduler_name == "heap"


def _run_crossover_scenario(backend, trace):
    """A generated workload whose pending population crosses the
    promote threshold (~2.7k peak for 400 flows), run with a trace."""
    def hook(time, fn, args):
        trace.append((time, getattr(fn, "__qualname__", repr(fn)),
                      len(args)))

    sim = Simulator(backend, trace=hook)
    scenario = generate_preset(sim, "medium", seed=5, max_flows=400)
    scenario.start()
    sim.run(until=0.8)
    goodput = sum(f.acked_packets for f in scenario.bulk_flows.values())
    return sim, goodput


class TestCrossoverTraceIdentity:
    def test_auto_trace_identical_to_both_fixed_backends(self, monkeypatch):
        # Pin the documented constant band: the scenario's ~2.7k peak
        # pending is sized to cross promote=2048, and a self-calibrated
        # band (which varies by machine and backend implementation)
        # could sit on either side of it.
        monkeypatch.setenv("REPRO_SIM_CALIBRATE", "0")
        auto_trace, heap_trace, wheel_trace = [], [], []
        auto_sim, auto_goodput = _run_crossover_scenario("auto", auto_trace)
        heap_sim, heap_goodput = _run_crossover_scenario("heap", heap_trace)
        wheel_sim, wheel_goodput = _run_crossover_scenario("wheel",
                                                           wheel_trace)

        # The auto run crossed the threshold and really migrated.
        assert auto_sim._sched.migrations >= 1
        assert auto_sim.active_backend == "wheel"
        assert auto_sim.pending_events > AUTO_DEMOTE_PENDING

        # Real work happened, identically, on every backend.
        assert auto_sim.events_processed > 10_000
        assert auto_sim.events_processed == heap_sim.events_processed
        assert auto_sim.events_processed == wheel_sim.events_processed
        assert auto_goodput == heap_goodput == wheel_goodput
        assert auto_trace == heap_trace
        assert auto_trace == wheel_trace
