"""BALIA across all three layers (the registry's one-file algorithm)."""

import numpy as np
import pytest

from repro.core import SubflowState, make_controller
from repro.core.balia import BaliaController, BaliaFluid, balia_allocation
from repro.core.reno import RenoController
from repro.fluid.dynamics import TcpFluid
from repro.fluid.equilibrium import tcp_rate


def _controller(windows, rtts):
    controller = BaliaController()
    for key, (w, rtt) in enumerate(zip(windows, rtts)):
        controller.register_subflow(key, SubflowState(cwnd=w, rtt=rtt))
    return controller


class TestBaliaController:
    def test_single_path_increase_matches_reno(self):
        balia = _controller([10.0], [0.1])
        reno = RenoController()
        reno.register_subflow(0, SubflowState(cwnd=10.0, rtt=0.1))
        assert balia.increase_increment(0) == pytest.approx(
            reno.increase_increment(0))

    def test_single_path_loss_halves(self):
        balia = _controller([10.0], [0.1])
        assert balia.decrease_on_loss(0) == pytest.approx(5.0)

    def test_decrease_capped_at_three_quarters(self):
        """min(alpha, 3/2)/2 caps the loss cut at 75% of the window."""
        balia = _controller([100.0, 1.0], [0.1, 0.1])   # alpha_1 = 100
        assert balia.decrease_on_loss(1) == pytest.approx(
            max(1.0 * (1.0 - 0.75), 1.0))
        balia = _controller([100.0, 8.0], [0.1, 0.1])
        assert balia.decrease_on_loss(1) == pytest.approx(8.0 * 0.25)

    def test_equal_paths_symmetric_increase(self):
        balia = _controller([10.0, 10.0], [0.1, 0.1])
        assert balia.increase_increment(0) == pytest.approx(
            balia.increase_increment(1))
        # alpha = 1 on both: increase is the Kelly-Voice term exactly.
        x = 10.0 / 0.1
        expected = (x / 0.1) / (2 * x) ** 2
        assert balia.increase_increment(0) == pytest.approx(expected)

    def test_smaller_path_gets_boosted_increase(self):
        """The (1+a)(4+a)/10 factor grows with alpha = max x / x_r."""
        balia = _controller([20.0, 5.0], [0.1, 0.1])
        x_small = 5.0 / 0.1
        total = (20.0 + 5.0) / 0.1
        kelly = (x_small / 0.1) / total ** 2
        assert balia.increase_increment(1) > kelly

    def test_registry_constructs_it(self):
        assert isinstance(make_controller("balia"), BaliaController)


class TestBaliaFluid:
    def test_single_route_matches_tcp(self):
        balia, tcp = BaliaFluid(), TcpFluid()
        x, p, rtt = np.array([50.0]), np.array([0.01]), np.array([0.1])
        assert balia.derivative(x, p, rtt)[0] == pytest.approx(
            tcp.derivative(x, p, rtt)[0])

    def test_zero_rates_recover(self):
        balia = BaliaFluid()
        dx = balia.derivative(np.zeros(2), np.zeros(2),
                              np.array([0.1, 0.1]))
        assert np.all(dx > 0)

    def test_collapsed_route_keeps_probing(self):
        """BALIA's increase stays positive as x_r -> 0 (graded probing,
        unlike the fully coupled dynamics)."""
        balia = BaliaFluid()
        dx = balia.derivative(np.array([100.0, 0.0]),
                              np.array([0.01, 0.2]),
                              np.array([0.1, 0.1]))
        assert dx[1] > 0

    def test_allocation_is_stationary(self):
        balia = BaliaFluid()
        rng = np.random.default_rng(5)
        for _ in range(50):
            n = int(rng.integers(2, 5))
            p = rng.uniform(1e-3, 0.1, n)
            rtt = rng.uniform(0.02, 0.3, n)
            x = balia_allocation(p, rtt)
            dx = balia.derivative(x, p, rtt)
            scale = float(np.max(x)) / float(np.min(rtt))
            assert np.max(np.abs(dx)) / scale < 1e-9

    def test_batched_rows_match_1d(self):
        balia = BaliaFluid()
        rng = np.random.default_rng(7)
        x = rng.uniform(0.5, 200.0, (6, 3))
        p = rng.uniform(1e-4, 0.1, (6, 3))
        rtt = rng.uniform(0.02, 0.3, (6, 3))
        batch = balia.derivative(x, p, rtt)
        for k in range(6):
            row = balia.derivative(x[k], p[k], rtt[k])
            assert np.array_equal(batch[k], row)


class TestBaliaAllocation:
    def test_total_is_best_path_tcp_rate(self):
        p = np.array([0.005, 0.02, 0.08])
        rtt = np.array([0.1, 0.1, 0.1])
        x = balia_allocation(p, rtt)
        assert float(x.sum()) == pytest.approx(tcp_rate(0.005, 0.1))

    def test_best_path_carries_the_max(self):
        p = np.array([0.005, 0.02])
        rtt = np.array([0.1, 0.1])
        x = balia_allocation(p, rtt)
        assert x[0] > x[1] > 0

    def test_graded_share_between_olia_and_tcp(self):
        """Worse paths keep a nonzero but sub-TCP share: BALIA sits
        between OLIA (zero) and uncoupled TCP (full rate)."""
        from repro.fluid.equilibrium import olia_allocation, tcp_allocation
        p = np.array([0.005, 0.02])
        rtt = np.array([0.1, 0.1])
        balia = balia_allocation(p, rtt)
        olia = olia_allocation(p, rtt)
        tcp = tcp_allocation(p, rtt)
        assert olia[1] == 0.0
        assert 0.0 < balia[1] < tcp[1]

    def test_tied_paths_split_equally(self):
        p = np.array([0.01, 0.01])
        rtt = np.array([0.1, 0.1])
        x = balia_allocation(p, rtt)
        assert x[0] == pytest.approx(x[1])
        assert float(x.sum()) == pytest.approx(tcp_rate(0.01, 0.1))

    def test_single_path_is_tcp(self):
        assert balia_allocation(np.array([0.01]),
                                np.array([0.1]))[0] \
            == pytest.approx(tcp_rate(0.01, 0.1))

    def test_batched_rows_match_1d(self):
        rng = np.random.default_rng(11)
        p = rng.uniform(1e-4, 0.1, (8, 3))
        rtt = rng.uniform(0.02, 0.3, (8, 3))
        batch = balia_allocation(p, rtt)
        for k in range(8):
            assert np.array_equal(batch[k], balia_allocation(p[k], rtt[k]))

    def test_solver_resolves_balia_by_name(self):
        """solve_fixed_point('balia') goes through the registry."""
        from repro.fluid import FluidNetwork, SharpLoss, solve_fixed_point
        net = FluidNetwork()
        l1 = net.add_link(SharpLoss(capacity=400.0))
        l2 = net.add_link(SharpLoss(capacity=400.0))
        mp = net.add_user("mp")
        net.add_route(mp, [l1], rtt=0.1)
        net.add_route(mp, [l2], rtt=0.1)
        rules = {mp: "balia"}
        for i in range(3):
            user = net.add_user(f"tcp{i}")
            net.add_route(user, [l2], rtt=0.1)
            rules[user] = "tcp"
        result = solve_fixed_point(net, rules, floor_packets=1.0)
        assert result.converged
        # The clean private link should carry more than the shared one.
        assert result.rates[0] > result.rates[1] > 0
