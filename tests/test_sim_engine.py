"""Unit tests for the event engine."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "late")
        sim.schedule(1.0, log.append, "early")
        sim.run(until=3.0)
        assert log == ["early", "late"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, log.append, i)
        sim.run(until=2.0)
        assert log == [0, 1, 2, 3, 4]

    def test_clock_advances_to_until(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_events_beyond_until_stay_queued(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, log.append, "x")
        sim.run(until=5.0)
        assert log == []
        sim.run(until=15.0)
        assert log == ["x"]

    def test_schedule_during_run(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run(until=10.0)
        assert log == [0, 1, 2, 3]

    def test_now_visible_inside_callback(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run(until=3.0)
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, log.append, "no")
        event.cancel()
        sim.run(until=2.0)
        assert log == []

    def test_cancel_is_lazy_but_counts_stay_consistent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1
        sim.run(until=2.0)
        assert sim.events_processed == 0


class TestRunUntilEmpty:
    def test_processes_everything(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(5.0, log.append, 2)
        sim.run_until_empty()
        assert log == [1, 2]
        assert sim.now == 5.0

    def test_event_budget_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run_until_empty(max_events=100)
