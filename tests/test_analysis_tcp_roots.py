"""Tests for the TCP formula helpers and root finders."""

import math

import pytest

from repro.analysis import (
    RootError,
    bisect_increasing,
    loss_for_rate,
    positive_real_roots,
    tcp_rate,
    unique_positive_root,
    window_for_loss,
)


class TestTcpFormula:
    def test_rate_value(self):
        assert tcp_rate(0.02, 0.1) == pytest.approx(100.0)

    def test_rate_loss_inverse(self):
        p = loss_for_rate(tcp_rate(0.01, 0.15), 0.15)
        assert p == pytest.approx(0.01)

    def test_window(self):
        assert window_for_loss(0.02) == pytest.approx(10.0)

    def test_window_is_rate_times_rtt(self):
        p, rtt = 0.005, 0.08
        assert window_for_loss(p) == pytest.approx(tcp_rate(p, rtt) * rtt)

    def test_validation(self):
        with pytest.raises(ValueError):
            tcp_rate(0.0, 0.1)
        with pytest.raises(ValueError):
            tcp_rate(0.1, -1.0)
        with pytest.raises(ValueError):
            loss_for_rate(-1.0, 0.1)
        with pytest.raises(ValueError):
            window_for_loss(0.0)


class TestRoots:
    def test_positive_real_roots_of_quadratic(self):
        # (z - 2)(z + 3) = z^2 + z - 6
        assert positive_real_roots([1.0, 1.0, -6.0]) == pytest.approx([2.0])

    def test_unique_positive_root_cubic(self):
        # z^3 + z^2 + z - 3 has root z = 1.
        assert unique_positive_root([1.0, 1.0, 1.0, -3.0]) == pytest.approx(1.0)

    def test_no_positive_root_raises(self):
        with pytest.raises(RootError):
            unique_positive_root([1.0, 0.0, 1.0])  # z^2 + 1

    def test_multiple_positive_roots_raise(self):
        # (z-1)(z-2) = z^2 - 3z + 2
        with pytest.raises(RootError):
            unique_positive_root([1.0, -3.0, 2.0])

    def test_bisect_increasing(self):
        root = bisect_increasing(lambda z: z * z - 2.0, 0.0, 10.0)
        assert root == pytest.approx(math.sqrt(2.0), rel=1e-10)

    def test_bisect_requires_bracket(self):
        with pytest.raises(RootError):
            bisect_increasing(lambda z: z + 1.0, 0.0, 10.0)
