"""The packet-scheduler axis: registry resolution, policies, the gate.

Congestion control decides *how much* each subflow may send; the packet
scheduler decides *which* subflow carries the next packet of a finite
transfer.  This suite covers the axis end to end: name resolution
through :func:`repro.core.registry.make_scheduler` (aliases, defaults,
parameter validation), the ranking behaviour of each builtin policy in
isolation, the scheduler gate on real finite transfers over asymmetric
paths, and the one behavioural ordering the redundant policy promises —
on a lossy latency-dominated path pair a duplicated small transfer
completes no later (in the mean) than a minRTT-partitioned one.
"""

import random
from types import SimpleNamespace

import pytest

from repro.core.registry import (
    available_schedulers,
    get_scheduler_spec,
    make_scheduler,
    scheduler_specs,
)
from repro.sim import Link, MptcpConnection, PathSpec, Simulator
from repro.sim.packet_scheduler import PacketScheduler

SCHEDULERS = ("minrtt", "roundrobin", "redundant", "qaware")


class TestRegistryAxis:
    def test_every_builtin_is_registered(self):
        names = {spec.name for spec in scheduler_specs()}
        assert names == set(SCHEDULERS)

    def test_available_includes_aliases(self):
        names = available_schedulers()
        assert names == sorted(names)
        for alias in ("min-rtt", "rr", "round-robin", "duplicate",
                      "queue-aware", "cross-layer"):
            assert alias in names

    def test_minrtt_is_the_named_default(self):
        assert make_scheduler(None).name == "minrtt"
        assert make_scheduler().name == "minrtt"

    def test_aliases_resolve(self):
        for alias, canonical in (("rr", "roundrobin"),
                                 ("min-rtt", "minrtt"),
                                 ("duplicate", "redundant"),
                                 ("queue-aware", "qaware"),
                                 ("cross-layer", "qaware")):
            assert make_scheduler(alias).name == canonical
            assert get_scheduler_spec(alias).name == canonical

    def test_unknown_name_lists_known_names(self):
        with pytest.raises(KeyError, match="minrtt"):
            make_scheduler("fifo")

    def test_unexpected_parameter_rejected(self):
        with pytest.raises((KeyError, TypeError),
                           match="does not accept"):
            make_scheduler("minrtt", quantum=3)

    def test_each_spec_makes_its_policy(self):
        for spec in scheduler_specs():
            policy = spec.make()
            assert isinstance(policy, PacketScheduler)
            assert policy.name == spec.name

    def test_instances_are_not_shared(self):
        """Stateful policies (roundrobin's cursor) must be per-call."""
        assert make_scheduler("rr") is not make_scheduler("rr")


def _stub(key, srtt, queued=0, rate_bps=1e6):
    head = SimpleNamespace(queue=[None] * queued, rate_bps=rate_bps)
    return SimpleNamespace(key=key, srtt=srtt, path=(head,))


class TestPolicyRanking:
    def test_minrtt_prefers_lowest_srtt_then_key(self):
        policy = make_scheduler("minrtt")
        a, b, c = _stub(0, 0.05), _stub(1, 0.02), _stub(2, 0.02)
        assert policy.choose([a, b, c]) is b

    def test_roundrobin_cycles_in_key_order(self):
        policy = make_scheduler("roundrobin")
        a, b, c = _stub(0, 0.1), _stub(1, 0.1), _stub(2, 0.1)
        granted = []
        for _ in range(6):
            choice = policy.choose([a, b, c])
            policy.on_grant(choice)
            granted.append(choice.key)
        assert granted == [0, 1, 2, 0, 1, 2]

    def test_roundrobin_skips_missing_subflows(self):
        policy = make_scheduler("roundrobin")
        a, c = _stub(0, 0.1), _stub(2, 0.1)
        policy.on_grant(a)
        assert policy.choose([a, c]) is c
        policy.on_grant(c)
        assert policy.choose([a, c]) is a

    def test_roundrobin_cursor_survives_removal_of_others(self):
        policy = make_scheduler("roundrobin")
        a, b = _stub(0, 0.1), _stub(1, 0.1)
        policy.on_grant(b)
        policy.on_subflow_removed(0)     # not the cursor: keep it
        assert policy.choose([a]) is a   # wraps past the removed key
        policy.on_subflow_removed(1)     # the cursor itself: reset
        assert policy.choose([a, b]) is a

    def test_qaware_penalizes_the_backed_up_path(self):
        policy = make_scheduler("qaware")
        # Same srtt, but one first hop has a deep queue at a slow rate:
        # its drain time dwarfs the tie and the empty path must win.
        clear = _stub(0, 0.05, queued=0, rate_bps=1e6)
        jammed = _stub(1, 0.05, queued=40, rate_bps=1e6)
        assert policy.choose([jammed, clear]) is clear

    def test_redundant_is_duplicating(self):
        assert make_scheduler("redundant").duplicates is True
        for name in ("minrtt", "roundrobin", "qaware"):
            assert make_scheduler(name).duplicates is False


def _asymmetric_paths(sim, *, loss_rate=0.0, seed=None):
    """A fast and a slow path, optionally with seeded channel loss."""
    paths = []
    for i, (rate, delay) in enumerate(((8e6, 0.02), (4e6, 0.04))):
        rng = random.Random(2 * seed + i) if loss_rate > 0.0 else None
        link = Link(sim, rate, delay, name=f"p{i}",
                    loss_rate=loss_rate, loss_rng=rng)
        paths.append(PathSpec((link,), delay))
    return paths


def _finite_transfer(scheduler, *, size=40, loss_rate=0.0, seed=None,
                     algorithm="olia", backend="heap", trace=None,
                     horizon=30.0):
    """One finite MPTCP transfer; returns (connection, completions)."""
    sim = Simulator(backend, trace=trace) if trace else Simulator(backend)
    done = []
    conn = MptcpConnection(
        sim, algorithm, _asymmetric_paths(sim, loss_rate=loss_rate,
                                          seed=seed),
        scheduler=scheduler, size_packets=size,
        on_complete=done.append)
    conn.start()
    sim.run(until=horizon)
    return conn, done


class TestSchedulerGate:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_every_scheduler_completes_the_transfer(self, scheduler):
        conn, done = _finite_transfer(scheduler)
        assert conn.complete
        assert done == [conn.transfer_time]
        assert 0 < conn.transfer_time < 30.0

    @pytest.mark.parametrize("backend", ("heap", "wheel"))
    def test_default_scheduler_is_minrtt_byte_for_byte(self, backend):
        """``scheduler=None`` and ``scheduler='minrtt'`` are the same
        simulation, event for event, on both engine backends."""
        traces = []
        for scheduler in (None, "minrtt"):
            lines = []

            def hook(time, fn, args, lines=lines):
                lines.append(
                    f"{time!r} {getattr(fn, '__qualname__', repr(fn))} "
                    f"{len(args)}")

            conn, _ = _finite_transfer(scheduler, backend=backend,
                                       trace=hook)
            traces.append((lines, conn.transfer_time))
        (default_trace, default_time), (named_trace, named_time) = traces
        assert default_time == named_time
        assert len(default_trace) > 100
        assert default_trace == named_trace

    def test_partition_schedulers_split_the_stream(self):
        """minrtt partitions: subflow deliveries sum to exactly size."""
        conn, _ = _finite_transfer("minrtt", size=50)
        delivered = sum(sf.snd_una for sf in conn.subflows)
        assert delivered == 50

    def test_redundant_duplicates_the_stream(self):
        """Every subflow is offered the full copy; the union finishes
        the transfer even though no single subflow needs to."""
        conn, _ = _finite_transfer("redundant", size=50)
        assert conn.complete
        for sf in conn.subflows:
            assert sf.size_packets == 50

    def test_policy_instance_accepted(self):
        conn, _ = _finite_transfer(make_scheduler("roundrobin"))
        assert conn.complete
        assert conn.scheduler.name == "roundrobin"

    def test_bulk_connections_never_consult_the_policy(self):
        """Without size_packets the gate is not installed: a policy
        that explodes on contact proves it is never touched."""
        class Landmine(PacketScheduler):
            name = "landmine"

            def choose(self, ready):
                raise AssertionError("bulk flow consulted the scheduler")

        sim = Simulator()
        conn = MptcpConnection(sim, "olia", _asymmetric_paths(sim),
                               scheduler=Landmine())
        conn.start()
        sim.run(until=2.0)
        assert conn.acked_packets > 0
        assert not conn.complete

    def test_unknown_scheduler_name_raises(self):
        sim = Simulator()
        with pytest.raises(KeyError, match="minrtt"):
            MptcpConnection(sim, "olia", _asymmetric_paths(sim),
                            scheduler="fifo", size_packets=10)

    def test_on_complete_requires_a_finite_size(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="size_packets"):
            MptcpConnection(sim, "olia", _asymmetric_paths(sim),
                            on_complete=lambda t: None)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_finite_transfers_are_deterministic(self, scheduler):
        one, _ = _finite_transfer(scheduler, loss_rate=0.05, seed=7)
        two, _ = _finite_transfer(scheduler, loss_rate=0.05, seed=7)
        assert one.transfer_time == two.transfer_time


class TestRedundantVsMinRtt:
    def test_redundant_mean_no_worse_on_lossy_small_transfers(self):
        """The redundant policy's contract, measured: on a lossy
        asymmetric pair, small (latency-dominated) transfers complete
        no later in the mean than under minRTT — a lost packet's
        retransmission timeout is hidden by the other path's copy.
        Per-seed comparison is noise (the two policies consume
        different loss sequences); the mean over 30 seeds is not.
        """
        def mean_time(scheduler):
            times = []
            for seed in range(30):
                conn, _ = _finite_transfer(
                    scheduler, size=16, loss_rate=0.10, seed=seed,
                    horizon=60.0)
                assert conn.complete, f"{scheduler} seed {seed} stuck"
                times.append(conn.transfer_time)
            return sum(times) / len(times)

        assert mean_time("redundant") < 0.9 * mean_time("minrtt")
