"""Unit tests for the Jacobson/Karels RTT estimator."""

import pytest

from repro.core import RttEstimator


class TestRttEstimator:
    def test_first_sample_initialises(self):
        est = RttEstimator()
        est.update(0.2)
        assert est.srtt == pytest.approx(0.2)
        assert est.rttvar == pytest.approx(0.1)

    def test_constructor_seed(self):
        est = RttEstimator(initial_rtt=0.1)
        assert est.srtt == pytest.approx(0.1)

    def test_ewma_update(self):
        est = RttEstimator(initial_rtt=0.1)
        est.update(0.2)
        # srtt = 0.1 + (0.2-0.1)/8
        assert est.srtt == pytest.approx(0.1125)
        # rttvar = 0.05 + (|0.1| - 0.05)/4
        assert est.rttvar == pytest.approx(0.0625)

    def test_converges_to_constant_samples(self):
        est = RttEstimator(initial_rtt=0.5)
        for _ in range(300):
            est.update(0.08)
        assert est.srtt == pytest.approx(0.08, rel=1e-3)
        assert est.rttvar == pytest.approx(0.0, abs=1e-3)

    def test_rto_formula_and_floor(self):
        est = RttEstimator(initial_rtt=0.1)
        assert est.rto == pytest.approx(max(0.1 + 4 * 0.05, 0.2))
        for _ in range(300):
            est.update(0.01)
        assert est.rto == pytest.approx(0.2)  # clamped to min_rto

    def test_initial_rto_without_samples(self):
        assert RttEstimator().rto == pytest.approx(1.0)

    def test_rejects_nonpositive_samples(self):
        est = RttEstimator()
        with pytest.raises(ValueError):
            est.update(0.0)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RttEstimator(min_rto=0.0)
        with pytest.raises(ValueError):
            RttEstimator(min_rto=1.0, max_rto=0.5)

    def test_rto_ceiling(self):
        est = RttEstimator(initial_rtt=50.0, max_rto=60.0)
        est.update(80.0)
        assert est.rto == 60.0
