"""Tests for the scenario C closed forms (Fig. 5, Section III-C)."""

import pytest

from repro.analysis import scenario_c
from repro.units import mbps_to_pps


def paper_setting(n1=10, c1_mbps=1.0):
    """Testbed setting: N2=10, C2=1 Mbps, RTT 150 ms."""
    return dict(n1=n1, n2=10, c1=mbps_to_pps(c1_mbps), c2=mbps_to_pps(1.0),
                rtt=0.15)


class TestThreshold:
    def test_equal_users(self):
        assert scenario_c.lia_threshold(10, 10) == pytest.approx(1.0 / 3.0)

    def test_paper_claim(self):
        """'multipath users get a larger share as soon as C1 >= C2/(2+N1/N2)'."""
        assert scenario_c.lia_threshold(20, 10) == pytest.approx(0.25)


class TestLiaAboveThreshold:
    def test_cubic_satisfied(self):
        res = scenario_c.lia_fixed_point(**paper_setting())
        z = (res.p1 / res.p2) ** 0.5
        ratio = res.n1 / res.n2
        assert z ** 3 + ratio * z * z + z == pytest.approx(res.c2 / res.c1,
                                                           rel=1e-9)

    def test_normalized_forms(self):
        """(x1+x2)/C1 = 1+z^2 and y/C2 = 1 - (N1 C1)/(N2 C2) z^2."""
        res = scenario_c.lia_fixed_point(**paper_setting(n1=20))
        z_sq = res.p1 / res.p2
        assert res.multipath_normalized == pytest.approx(1.0 + z_sq)
        expected_y = 1.0 - (res.n1 * res.c1) / (res.n2 * res.c2) * z_sq
        assert res.singlepath_normalized == pytest.approx(expected_y)

    def test_capacity_constraints(self):
        res = scenario_c.lia_fixed_point(**paper_setting(n1=30, c1_mbps=2.0))
        assert res.x1 == pytest.approx(res.c1)
        assert res.n1 * res.x2 + res.n2 * res.y == pytest.approx(
            res.n2 * res.c2, rel=1e-9)

    def test_problem_p2_multipath_exceeds_fair_share(self):
        """With C1 = C2, fairness says multipath should not touch AP2 at
        all, yet LIA takes a visible share (normalized > 1)."""
        res = scenario_c.lia_fixed_point(**paper_setting())
        assert res.multipath_normalized > 1.05
        assert res.singlepath_normalized < 0.95

    def test_aggression_grows_with_n1(self):
        """Fig. 5(c): single-path throughput decreases in N1/N2."""
        ys = [scenario_c.lia_fixed_point(**paper_setting(n1=n1))
              .singlepath_normalized for n1 in (5, 10, 20, 30)]
        assert all(a > b for a, b in zip(ys, ys[1:]))

    def test_p2_grows_with_n1(self):
        """Fig. 5(d): LIA keeps increasing congestion at AP2."""
        p2s = [scenario_c.lia_fixed_point(**paper_setting(n1=n1)).p2
               for n1 in (5, 10, 20, 30)]
        assert all(a < b for a, b in zip(p2s, p2s[1:]))

    def test_paper_p1_values(self):
        """Paper: p1 = 0.01 and 0.003 for C1 = 1 and 2 Mbps (measured)."""
        res1 = scenario_c.lia_fixed_point(**paper_setting(c1_mbps=1.0))
        res2 = scenario_c.lia_fixed_point(**paper_setting(c1_mbps=2.0))
        assert res1.p1 == pytest.approx(0.01, rel=0.5)
        assert res2.p1 == pytest.approx(0.003, rel=0.5)
        assert res2.p1 < res1.p1


class TestLiaBelowThreshold:
    def test_equal_rates_when_n1_equals_n2(self):
        """Below threshold all users receive (C1+C2)/2 (paper, N1=N2)."""
        res = scenario_c.lia_fixed_point(n1=10, n2=10, c1=20.0, c2=100.0,
                                         rtt=0.15)
        expected = (20.0 + 100.0) / 2.0
        assert res.x1 + res.x2 == pytest.approx(expected)
        assert res.y == pytest.approx(expected)

    def test_p1_above_p2(self):
        res = scenario_c.lia_fixed_point(n1=10, n2=10, c1=20.0, c2=100.0,
                                         rtt=0.15)
        assert res.p1 > res.p2

    def test_continuous_at_threshold(self):
        n1 = n2 = 10
        c2 = 100.0
        threshold = scenario_c.lia_threshold(n1, n2)
        below = scenario_c.lia_fixed_point(n1, n2, c2 * threshold * 0.999,
                                           c2, 0.15)
        above = scenario_c.lia_fixed_point(n1, n2, c2 * threshold * 1.001,
                                           c2, 0.15)
        assert below.y == pytest.approx(above.y, rel=0.01)

    def test_capacity_constraint_ap2(self):
        res = scenario_c.lia_fixed_point(n1=20, n2=10, c1=10.0, c2=100.0,
                                         rtt=0.15)
        assert res.n1 * res.x2 + res.n2 * res.y == pytest.approx(
            res.n2 * res.c2, rel=1e-9)


class TestFairAndOptimum:
    def test_fair_pools_when_c1_small(self):
        mp, sp = scenario_c.fair_allocation(10, 10, 50.0, 100.0)
        assert mp == sp == pytest.approx(75.0)

    def test_fair_separates_when_c1_large(self):
        mp, sp = scenario_c.fair_allocation(10, 10, 200.0, 100.0)
        assert mp == pytest.approx(200.0)
        assert sp == pytest.approx(100.0)

    def test_optimum_probe_only_when_c1_large(self):
        res = scenario_c.optimum_with_probing(**paper_setting(c1_mbps=2.0))
        assert res.x2 == pytest.approx(1.0 / 0.15)
        assert res.y == pytest.approx(res.c2 - 1.0 / 0.15)

    def test_optimum_pools_when_c1_small(self):
        res = scenario_c.optimum_with_probing(n1=10, n2=10, c1=30.0,
                                              c2=120.0, rtt=0.15)
        pooled = (30.0 + 120.0) / 2.0
        assert res.x1 + res.x2 == pytest.approx(pooled)
        assert res.y == pytest.approx(pooled)

    def test_olia_beats_lia_for_singlepath_users(self):
        """Fig. 11: with OLIA, single-path users get up to 2x more."""
        for c1_mbps in (1.0, 2.0):
            for n1 in (10, 20, 30):
                lia = scenario_c.lia_fixed_point(
                    **paper_setting(n1=n1, c1_mbps=c1_mbps))
                olia = scenario_c.olia_prediction(
                    **paper_setting(n1=n1, c1_mbps=c1_mbps))
                assert olia.singlepath_normalized > lia.singlepath_normalized

    def test_olia_p2_far_below_lia(self):
        """Fig. 12 shape: at N1 = 3 N2, p2 grows ~2x from its N1=0 value
        with OLIA but 4x+ with LIA (the measured gap is even larger)."""
        from repro.analysis.tcp import loss_for_rate
        setting = paper_setting(n1=30)
        p2_baseline = loss_for_rate(setting["c2"], setting["rtt"])
        lia = scenario_c.lia_fixed_point(**setting)
        olia = scenario_c.olia_prediction(**setting)
        assert olia.p2 / p2_baseline < 2.2
        assert lia.p2 / p2_baseline > 3.5
        assert lia.p2 / olia.p2 > 2.0


class TestCrossCheckWithFluid:
    def test_matches_fluid_fixed_point(self):
        """The closed form agrees with the generic fluid solver when the
        loss curves are the exact TCP-consistent ones.

        We build the scenario C network with SharpLoss links and compare
        the LIA allocation from the damped solver with the closed form;
        the loss model is not identical to the implicit one of the closed
        form, so rates agree loosely but the structure (shares, ordering)
        must match.
        """
        from repro.fluid import FluidNetwork, SharpLoss, solve_fixed_point
        n1 = n2 = 10
        c1, c2 = mbps_to_pps(1.0), mbps_to_pps(1.0)
        rtt = 0.15
        net = FluidNetwork()
        ap1 = net.add_link(SharpLoss(capacity=n1 * c1))
        ap2 = net.add_link(SharpLoss(capacity=n2 * c2))
        rules = {}
        for i in range(n1):
            u = net.add_user(f"mp{i}")
            net.add_route(u, [ap1], rtt=rtt)
            net.add_route(u, [ap2], rtt=rtt)
            rules[u] = "lia"
        for i in range(n2):
            u = net.add_user(f"sp{i}")
            net.add_route(u, [ap2], rtt=rtt)
            rules[u] = "tcp"
        fp = solve_fixed_point(net, rules, floor_packets=1.0)
        closed = scenario_c.lia_fixed_point(n1=n1, n2=n2, c1=c1, c2=c2,
                                            rtt=rtt)
        totals = fp.user_totals(net)
        mp_rate = totals[:n1].mean()
        sp_rate = totals[n1:].mean()
        assert mp_rate / sp_rate == pytest.approx(
            (closed.x1 + closed.x2) / closed.y, rel=0.25)
        # LIA overshoot: multipath users above their private capacity.
        assert mp_rate > c1
