"""The random scenario generator: determinism, structure, validity."""

import random

import pytest

from repro.sim import Simulator
from repro.topology import (
    PRESETS,
    GeneratorConfig,
    build_random_scenario,
    generate_preset,
    preset_config,
)


def _tiny(**overrides):
    params = dict(n_flows=24, n_links=8)
    params.update(overrides)
    return GeneratorConfig(**params)


class TestDeterminism:
    def test_same_seed_same_object_graph(self):
        a = build_random_scenario(Simulator(), random.Random(7), _tiny())
        b = build_random_scenario(Simulator(), random.Random(7), _tiny())
        assert a.describe() == b.describe()

    def test_different_seed_differs(self):
        a = build_random_scenario(Simulator(), random.Random(7), _tiny())
        b = build_random_scenario(Simulator(), random.Random(8), _tiny())
        assert a.describe() != b.describe()

    def test_generation_independent_of_backend(self):
        """The build consumes only the given rng — the simulator's
        scheduler backend cannot leak into the scenario structure."""
        a = build_random_scenario(Simulator("heap"), random.Random(3),
                                  _tiny())
        b = build_random_scenario(Simulator("wheel"), random.Random(3),
                                  _tiny())
        assert a.describe() == b.describe()

    def test_generate_preset_seed_matters(self):
        a = generate_preset(Simulator(), "tiny", seed=1)
        b = generate_preset(Simulator(), "tiny", seed=1)
        c = generate_preset(Simulator(), "tiny", seed=2)
        assert a.describe() == b.describe()
        assert a.describe() != c.describe()


class TestStructure:
    def test_population_split_matches_churn_fraction(self):
        config = _tiny(n_flows=40, churn_fraction=0.25)
        scenario = build_random_scenario(Simulator(), random.Random(1),
                                         config)
        assert len(scenario.churn_sources) == 10
        assert len(scenario.bulk_flows) == 30
        assert scenario.n_flows == 40

    def test_paths_use_pool_links_and_complete_the_rtt(self):
        scenario = build_random_scenario(Simulator(), random.Random(2),
                                         _tiny(two_hop_fraction=0.5))
        link_names = {link.name for link in scenario.links}
        for desc in scenario.flow_descriptions:
            if desc.kind != "bulk":
                continue
            for names, reverse in desc.paths:
                assert set(names) <= link_names
                assert reverse >= 0
                forward = sum(link.delay for link in scenario.links
                              if link.name in names)
                assert forward + reverse == pytest.approx(desc.base_rtt)

    def test_algorithm_mix_is_respected(self):
        config = _tiny(n_flows=60, n_links=12, churn_fraction=0.0,
                       algorithm_mix=(("olia", 1.0), ("tcp", 1.0)))
        scenario = build_random_scenario(Simulator(), random.Random(3),
                                         config)
        algorithms = {d.algorithm for d in scenario.flow_descriptions}
        assert algorithms <= {"olia", "tcp"}
        assert "olia" in algorithms and "tcp" in algorithms
        for desc in scenario.flow_descriptions:
            if desc.algorithm == "tcp":
                assert len(desc.paths) == 1
            else:
                assert (config.subflows_min <= len(desc.paths)
                        <= config.subflows_max)

    def test_subflows_land_on_distinct_primary_links(self):
        scenario = build_random_scenario(
            Simulator(), random.Random(4),
            _tiny(churn_fraction=0.0, two_hop_fraction=0.0))
        for desc in scenario.flow_descriptions:
            primaries = [names[0] for names, _ in desc.paths]
            assert len(primaries) == len(set(primaries))

    def test_generated_scenario_runs_and_makes_progress(self):
        sim = Simulator()
        scenario = generate_preset(sim, "tiny", seed=3)
        scenario.start()
        sim.run(until=2.0)
        assert sim.events_processed > 1000
        acked = sum(f.acked_packets for f in scenario.bulk_flows.values())
        assert acked > 0
        assert any(src.flows_started > 0
                   for src in scenario.churn_sources)


class TestConfigValidation:
    def test_rejects_bad_populations(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_flows=0, n_links=8)
        with pytest.raises(ValueError, match="n_links"):
            GeneratorConfig(n_flows=10, n_links=2, subflows_max=4)
        with pytest.raises(ValueError, match="churn_fraction"):
            _tiny(churn_fraction=1.5)
        with pytest.raises(ValueError, match="subflows"):
            _tiny(subflows_min=3, subflows_max=2)
        with pytest.raises(ValueError, match="capacity"):
            _tiny(capacity_mbps=(5.0, 1.0))
        with pytest.raises(ValueError, match="algorithm_mix"):
            _tiny(algorithm_mix=())

    def test_scaled_shrinks_links_in_step(self):
        config = PRESETS["medium"]
        capped = config.scaled(100)
        assert capped.n_flows == 100
        assert capped.n_links < config.n_links
        assert capped.n_links >= capped.subflows_max
        # Never scales up.
        assert config.scaled(10 * config.n_flows) is config

    def test_presets_span_the_roadmap_range(self):
        assert PRESETS["small"].n_flows == 100
        assert PRESETS["large"].n_flows >= 10_000
        for name, config in PRESETS.items():
            assert config.n_links >= config.subflows_max, name

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            preset_config("bogus")

    def test_mix_names_validated_against_registry(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            _tiny(algorithm_mix=(("not-an-algo", 1.0),))
        # Known name without a packet layer is rejected too.
        with pytest.raises(ValueError, match="no packet layer"):
            _tiny(algorithm_mix=(("epsilon", 1.0),))

    def test_default_mix_includes_balia(self):
        names = {name for name, _ in _tiny().algorithm_mix}
        assert "balia" in names

    def test_tcp_aliases_build_single_path_flows(self):
        """reno/uncoupled are the tcp spec — single-path like "tcp"."""
        config = _tiny(n_flows=30, churn_fraction=0.0,
                       algorithm_mix=(("reno", 1.0), ("uncoupled", 1.0)))
        scenario = build_random_scenario(Simulator(), random.Random(9),
                                         config)
        for desc in scenario.flow_descriptions:
            assert len(desc.paths) == 1, desc.algorithm


class TestAlgorithmOverride:
    def test_generate_preset_algorithm_override(self):
        scenario = generate_preset(Simulator(), "tiny", seed=3,
                                   algorithms=("balia", "tcp"))
        algorithms = {d.algorithm for d in scenario.flow_descriptions
                      if d.kind == "bulk"}
        assert algorithms <= {"balia", "tcp"}
        assert "balia" in algorithms

    def test_override_is_deterministic(self):
        a = generate_preset(Simulator(), "tiny", seed=5,
                            algorithms=("balia",))
        b = generate_preset(Simulator(), "tiny", seed=5,
                            algorithms=("balia",))
        assert a.describe() == b.describe()

    def test_balia_scenario_runs(self):
        sim = Simulator()
        scenario = generate_preset(sim, "tiny", seed=3,
                                   algorithms=("balia",))
        scenario.start()
        sim.run(until=2.0)
        acked = sum(f.acked_packets for f in scenario.bulk_flows.values())
        assert acked > 0
