"""Tests for the shared filesystem atomics (repro.util.atomics)."""

import os
import pickle
import time

import pytest

from repro.util.atomics import (
    MISSING,
    atomic_pickle,
    atomic_write_bytes,
    claim_age,
    load_pickle,
    release_claim,
    try_claim,
)


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "entry.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "entry.bin"
        atomic_write_bytes(path, b"x")
        assert path.read_bytes() == b"x"

    def test_overwrite_replaces_whole_entry(self, tmp_path):
        path = tmp_path / "entry.bin"
        atomic_write_bytes(path, b"old-and-longer")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_no_temporaries_left_behind(self, tmp_path):
        path = tmp_path / "entry.bin"
        for _ in range(3):
            atomic_write_bytes(path, b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["entry.bin"]

    def test_failure_cleans_tmpfile_and_raises(self, tmp_path):
        # The destination's parent is a *file*, so mkstemp-in-dir fails.
        blocker = tmp_path / "blocker"
        blocker.write_bytes(b"")
        with pytest.raises(OSError):
            atomic_write_bytes(blocker / "entry.bin", b"data")


class TestPickleRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "value.pkl"
        assert atomic_pickle(path, {"rates": [1.0, 2.0]})
        assert load_pickle(path) == {"rates": [1.0, 2.0]}

    def test_falsy_values_distinguished_from_missing(self, tmp_path):
        path = tmp_path / "value.pkl"
        for value in (None, False, 0, [], {}):
            assert atomic_pickle(path, value)
            loaded = load_pickle(path)
            assert loaded is not MISSING
            assert loaded == value

    def test_missing_entry_returns_default(self, tmp_path):
        assert load_pickle(tmp_path / "absent.pkl") is MISSING
        assert load_pickle(tmp_path / "absent.pkl", default=42) == 42

    def test_truncated_entry_reads_as_default(self, tmp_path):
        path = tmp_path / "torn.pkl"
        path.write_bytes(pickle.dumps({"k": 1})[:-4])
        assert load_pickle(path) is MISSING

    def test_garbage_entry_reads_as_default(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"not a pickle at all")
        assert load_pickle(path) is MISSING

    def test_unpicklable_value_returns_false(self, tmp_path):
        path = tmp_path / "value.pkl"
        assert not atomic_pickle(path, lambda: None)
        assert not path.exists()


class TestClaims:
    def test_first_claim_wins(self, tmp_path):
        claim = tmp_path / "point.claim"
        assert try_claim(claim)
        assert not try_claim(claim)

    def test_release_allows_reclaim(self, tmp_path):
        claim = tmp_path / "point.claim"
        assert try_claim(claim)
        release_claim(claim)
        assert try_claim(claim)

    def test_release_is_idempotent(self, tmp_path):
        claim = tmp_path / "point.claim"
        release_claim(claim)          # never claimed: not an error
        assert try_claim(claim)
        release_claim(claim)
        release_claim(claim)

    def test_claim_age(self, tmp_path):
        claim = tmp_path / "point.claim"
        assert claim_age(claim) is None
        assert try_claim(claim)
        age = claim_age(claim)
        assert age is not None and 0.0 <= age < 60.0

    def test_fresh_claim_survives_ttl(self, tmp_path):
        claim = tmp_path / "point.claim"
        assert try_claim(claim)
        assert not try_claim(claim, ttl=3600.0)

    def test_stale_claim_is_reaped_and_retaken(self, tmp_path):
        claim = tmp_path / "point.claim"
        assert try_claim(claim)
        # Age the claim artificially: a dead worker left it behind.
        old = time.time() - 120.0
        os.utime(claim, (old, old))
        assert try_claim(claim, ttl=60.0)
        # The reclaimed file is fresh again — a third taker must wait.
        assert not try_claim(claim, ttl=60.0)

    def test_custom_payload(self, tmp_path):
        claim = tmp_path / "point.claim"
        assert try_claim(claim, payload="owner=lockbox\n")
        assert claim.read_text() == "owner=lockbox\n"
