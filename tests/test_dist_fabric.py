"""Fault-injection and integration tests for the distributed sweep fabric.

The scenarios the ISSUE names: a worker killed mid-lease (the
coordinator reaps and requeues, no point lost or doubled), a
coordinator killed and resumed from the shared cache, a torn result
file healed through the atomics path, and a two-worker run whose merged
output is bitwise-equal to a single-worker reference.

In-process tests drive :class:`SweepWorker` on threads against a
:class:`CoordinatorThread`; the end-to-end test spawns real
``python -m repro sweep work`` processes through the bench harness.
"""

import pickle
import threading
import time

import pytest

from repro.dist import (PROTOCOL_VERSION, CoordinatorThread,
                        JsonLineConnection, ProtocolError, SweepCoordinator,
                        SweepWorker, decode_payload, encode_payload,
                        parse_hostport)
from repro.dist.bench import merge_results
from repro.experiments.runner import RunSpec
from repro.experiments.sweep import SweepRunner
from repro.serve.store import MISSING, ResultStore


def grid_point(*, value, scale=1.0, seed=None):
    """Cheap deterministic point function (module-level for RunSpec)."""
    return {"value": value, "scale": scale, "seed": seed,
            "result": value * scale + (seed or 0)}


def _grid(n=12):
    return [RunSpec.make(grid_point, value=i, scale=2.0, seed=7)
            for i in range(n)]


def _coordinator(specs, cache_dir, **kwargs):
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("heartbeat_timeout", 1.0)
    kwargs.setdefault("lease_size", 3)
    return SweepCoordinator(specs, cache_dir, **kwargs)


def _run_workers(port, count, **kwargs):
    kwargs.setdefault("reconnect_attempts", 3)
    kwargs.setdefault("reconnect_delay", 0.05)
    workers = [SweepWorker("127.0.0.1", port, name=f"w{i}", **kwargs)
               for i in range(count)]
    summaries = [None] * count
    def run(i):
        summaries[i] = workers[i].run()
    threads = [threading.Thread(target=run, args=(i,))
               for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert all(s is not None for s in summaries), "a worker hung"
    return summaries


class TestProtocol:
    def test_payload_round_trip(self):
        spec = _grid(1)[0]
        assert decode_payload(encode_payload(spec)) == spec
        assert decode_payload(encode_payload({"a": [1, None]})) == \
            {"a": [1, None]}

    def test_parse_hostport(self):
        assert parse_hostport("10.0.0.5:9000") == ("10.0.0.5", 9000)
        assert parse_hostport("somehost") == ("somehost", 8653)
        assert parse_hostport(":9000") == ("127.0.0.1", 9000)

    def test_parse_hostport_rejects_garbage(self):
        with pytest.raises(ValueError, match="numeric port"):
            parse_hostport("host:abc")
        with pytest.raises(ValueError, match="port must be in"):
            parse_hostport("host:99999")

    def test_register_rejects_protocol_mismatch(self, tmp_path):
        thread = CoordinatorThread(_coordinator(_grid(2), tmp_path))
        port = thread.start()
        try:
            with JsonLineConnection("127.0.0.1", port) as conn:
                with pytest.raises(ProtocolError,
                                   match="protocol version mismatch"):
                    conn.request("register", name="old", jobs=1,
                                 protocol=PROTOCOL_VERSION + 1)
        finally:
            thread.stop()
            thread.result()

    def test_unknown_op_is_in_band_error(self, tmp_path):
        thread = CoordinatorThread(_coordinator(_grid(2), tmp_path))
        port = thread.start()
        try:
            with JsonLineConnection("127.0.0.1", port) as conn:
                with pytest.raises(ProtocolError, match="unknown op"):
                    conn.request("frobnicate")
                # The connection survives the error (in-band reporting).
                status = conn.request("status")
                assert status["total"] == 2
        finally:
            thread.stop()
            thread.result()


class TestTwoWorkerIntegration:
    def test_merged_output_bitwise_equal_to_single_worker(self, tmp_path):
        specs = _grid(14)
        reference = SweepRunner(jobs=1).run(specs)

        thread = CoordinatorThread(
            _coordinator(specs, tmp_path / "dist", resume=False))
        port = thread.start()
        summaries = _run_workers(port, 2)
        stats = thread.result()

        assert stats["done"] and stats["completed"] == 14
        merged = merge_results(specs, tmp_path / "dist")
        assert [pickle.dumps(v) for v in merged] == \
            [pickle.dumps(v) for v in reference]
        assert all(s.reason == "done" for s in summaries)
        # Every point computed exactly once across the fleet.
        assert sum(s.points for s in summaries) == 14
        assert stats["duplicate_results"] == 0

    def test_merged_progress_counts_per_worker(self, tmp_path):
        specs = _grid(10)
        thread = CoordinatorThread(_coordinator(specs, tmp_path))
        port = thread.start()
        _run_workers(port, 2)
        stats = thread.result()
        assert stats["total"] == 10
        by_worker = stats["workers"]
        assert sum(w["completed"] for w in by_worker.values()) == 10
        assert stats["leases_granted"] >= 1
        assert stats["results_received"] == 10


class TestWorkerKilledMidLease:
    def test_eof_requeues_lease_no_point_lost_or_doubled(self, tmp_path):
        specs = _grid(9)
        coordinator = _coordinator(specs, tmp_path, lease_size=4)
        thread = CoordinatorThread(coordinator)
        port = thread.start()

        # A worker registers, leases 4 points, and dies (EOF) without
        # reporting anything.
        doomed = JsonLineConnection("127.0.0.1", port)
        hello = doomed.request("register", name="doomed", jobs=1,
                               protocol=PROTOCOL_VERSION)
        lease = doomed.request("lease", worker_id=hello["worker_id"],
                               max_points=4)
        assert len(lease["points"]) == 4
        doomed.close()
        time.sleep(0.2)     # let the server observe the EOF

        summaries = _run_workers(port, 1)
        stats = thread.result()
        assert stats["done"] and stats["completed"] == 9
        assert stats["reassigned_points"] == 4
        assert stats["duplicate_results"] == 0
        # The survivor computed every point exactly once.
        assert summaries[0].points == 9
        merged = merge_results(specs, tmp_path)
        assert merged == SweepRunner(jobs=1).run(specs)

    def test_silent_worker_reaped_by_heartbeat_timeout(self, tmp_path):
        specs = _grid(6)
        coordinator = _coordinator(specs, tmp_path, lease_size=2,
                                   heartbeat_interval=0.1,
                                   heartbeat_timeout=0.4)
        thread = CoordinatorThread(coordinator)
        port = thread.start()

        # This worker keeps its connection open but goes silent after
        # leasing — a hung process, not a dead one.  Only the reaper
        # can recover its lease.
        hung = JsonLineConnection("127.0.0.1", port)
        hello = hung.request("register", name="hung", jobs=1,
                             protocol=PROTOCOL_VERSION)
        lease = hung.request("lease", worker_id=hello["worker_id"],
                             max_points=2)
        assert len(lease["points"]) == 2
        time.sleep(0.8)     # > heartbeat_timeout: reaper fires

        summaries = _run_workers(port, 1)
        stats = thread.result()
        hung.close()
        assert stats["done"] and stats["completed"] == 6
        assert stats["reassigned_points"] == 2
        assert stats["dead_workers"] == 1
        assert summaries[0].points == 6

    def test_late_result_from_reaped_worker_is_deduplicated(
            self, tmp_path):
        specs = _grid(4)
        coordinator = _coordinator(specs, tmp_path, lease_size=2)
        thread = CoordinatorThread(coordinator)
        port = thread.start()

        straggler = JsonLineConnection("127.0.0.1", port)
        hello = straggler.request("register", name="straggler", jobs=1,
                                  protocol=PROTOCOL_VERSION)
        lease = straggler.request("lease", worker_id=hello["worker_id"],
                                  max_points=2)
        point = lease["points"][0]
        value = decode_payload(point["spec"]).execute()

        # A second worker reports the straggler's point first (the
        # reassignment race, with the timing pinned down): the late
        # copy must be acknowledged as a duplicate, not double-counted.
        other = JsonLineConnection("127.0.0.1", port)
        hello2 = other.request("register", name="other", jobs=1,
                               protocol=PROTOCOL_VERSION)
        first = other.request("result", worker_id=hello2["worker_id"],
                              index=point["index"], hash=point["hash"],
                              payload=encode_payload(value),
                              from_cache=False)
        assert first["duplicate"] is False
        late = straggler.request(
            "result", worker_id=hello["worker_id"],
            index=point["index"], hash=point["hash"],
            payload=encode_payload(value), from_cache=False)
        assert late["duplicate"] is True
        status = straggler.request("status")
        assert status["duplicate_results"] == 1
        straggler.close()
        other.close()
        thread.stop()
        thread.result()

    def test_result_hash_mismatch_rejected(self, tmp_path):
        specs = _grid(2)
        thread = CoordinatorThread(_coordinator(specs, tmp_path))
        port = thread.start()
        try:
            with JsonLineConnection("127.0.0.1", port) as conn:
                hello = conn.request("register", name="liar", jobs=1,
                                     protocol=PROTOCOL_VERSION)
                with pytest.raises(ProtocolError, match="hash mismatch"):
                    conn.request("result", worker_id=hello["worker_id"],
                                 index=0, hash="0" * 64,
                                 payload=encode_payload({"fake": 1}),
                                 from_cache=False)
        finally:
            thread.stop()
            thread.result()


class TestCoordinatorKilledAndResumed:
    def test_restart_resumes_from_shared_cache(self, tmp_path):
        specs = _grid(8)
        cache = tmp_path / "cache"

        # First coordinator: a manual worker completes 3 points, then
        # the coordinator is killed.
        first = _coordinator(specs, cache)
        thread_a = CoordinatorThread(first)
        port_a = thread_a.start()
        with JsonLineConnection("127.0.0.1", port_a) as conn:
            hello = conn.request("register", name="partial", jobs=1,
                                 protocol=PROTOCOL_VERSION)
            lease = conn.request("lease", worker_id=hello["worker_id"],
                                 max_points=3)
            for point in lease["points"]:
                value = decode_payload(point["spec"]).execute()
                conn.request("result", worker_id=hello["worker_id"],
                             index=point["index"], hash=point["hash"],
                             payload=encode_payload(value),
                             from_cache=False)
        thread_a.stop()
        stats_a = thread_a.result()
        assert stats_a["completed"] == 3 and not stats_a["done"]

        # Second coordinator on the same cache: resumes the 3 completed
        # points and only hands out the remaining 5.
        second = _coordinator(specs, cache)
        assert second.resumed_points == 3
        thread_b = CoordinatorThread(second)
        port_b = thread_b.start()
        summaries = _run_workers(port_b, 1)
        stats_b = thread_b.result()
        assert stats_b["done"] and stats_b["completed"] == 8
        assert stats_b["resumed_points"] == 3
        assert summaries[0].points == 5    # zero lost, zero recomputed
        assert merge_results(specs, cache) == SweepRunner(jobs=1).run(specs)

    def test_worker_exits_cleanly_when_coordinator_never_returns(self):
        # Nothing is listening on this port: the worker must give up
        # after its reconnect budget, not hang or crash.
        worker = SweepWorker("127.0.0.1", 1, reconnect_attempts=2,
                             reconnect_delay=0.05)
        summary = worker.run()
        assert summary.reason == "coordinator-gone"
        assert summary.points == 0
        assert summary.reconnects == 2

    def test_worker_redials_until_coordinator_appears(self, tmp_path):
        specs = _grid(5)
        coordinator = _coordinator(specs, tmp_path)
        thread = CoordinatorThread(coordinator)

        # Start the worker against a port with no listener yet; start
        # the coordinator on that port after a delay.  The reconnect
        # loop must pick it up and finish the grid.
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        thread.port = port

        worker = SweepWorker("127.0.0.1", port, name="patient",
                             reconnect_attempts=20, reconnect_delay=0.1)
        result = []
        runner = threading.Thread(target=lambda: result.append(worker.run()))
        runner.start()
        time.sleep(0.3)
        assert thread.start() == port
        runner.join(30)
        stats = thread.result()
        assert result and result[0].reason == "done"
        assert stats["done"] and stats["completed"] == 5


class TestTornResultHealing:
    def test_torn_cache_entry_recomputed_on_resume(self, tmp_path):
        specs = _grid(6)
        cache = tmp_path / "cache"
        # A completed sweep...
        SweepRunner(jobs=1, cache_dir=cache).run(specs)
        # ...with one entry torn by a crashed writer.
        store = ResultStore(cache, memory_entries=0)
        victim = store.path_for(specs[2].content_hash())
        victim.write_bytes(b"\x80\x04 torn mid-write")

        coordinator = _coordinator(specs, cache)
        # The resume scan heals (deletes) the torn entry and marks the
        # point incomplete instead of serving garbage.
        assert coordinator.resumed_points == 5
        assert store.get(specs[2].content_hash(), MISSING) is MISSING

        thread = CoordinatorThread(coordinator)
        port = thread.start()
        summaries = _run_workers(port, 1)
        stats = thread.result()
        assert stats["done"]
        assert summaries[0].points == 1    # only the healed point reran
        assert merge_results(specs, cache) == SweepRunner(jobs=1).run(specs)

    def test_already_complete_grid_serves_without_workers(self, tmp_path):
        specs = _grid(4)
        cache = tmp_path / "cache"
        SweepRunner(jobs=1, cache_dir=cache).run(specs)
        coordinator = _coordinator(specs, cache)
        assert coordinator.resumed_points == 4 and coordinator.done
        thread = CoordinatorThread(coordinator)
        thread.start()
        stats = thread.result()    # serve() returns immediately: done
        assert stats["done"] and stats["completed"] == 4
        assert stats["results_received"] == 0


class TestSharedCacheFastPath:
    def test_worker_serves_cached_points_without_recompute(self, tmp_path):
        specs = _grid(6)
        cache = tmp_path / "cache"
        # Another host already computed half the grid into the shared
        # cache, but the coordinator is told not to trust/resume it.
        SweepRunner(jobs=1, cache_dir=cache).run(specs[:3])
        coordinator = _coordinator(specs, cache, resume=False)
        thread = CoordinatorThread(coordinator)
        port = thread.start()
        summaries = _run_workers(port, 1, cache_dir=cache)
        stats = thread.result()
        assert stats["done"]
        assert summaries[0].cache_hits == 3
        assert summaries[0].computed == 3


class TestCoordinatorValidation:
    def test_empty_grid_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one spec"):
            SweepCoordinator([], tmp_path)

    def test_unknown_worker_id_rejected(self, tmp_path):
        thread = CoordinatorThread(_coordinator(_grid(2), tmp_path))
        port = thread.start()
        try:
            with JsonLineConnection("127.0.0.1", port) as conn:
                with pytest.raises(ProtocolError, match="unknown worker"):
                    conn.request("lease", worker_id="w999", max_points=1)
        finally:
            thread.stop()
            thread.result()

    def test_heartbeat_timeout_must_exceed_interval(self, tmp_path):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            SweepCoordinator(_grid(2), tmp_path, heartbeat_interval=5.0,
                             heartbeat_timeout=1.0)


class TestWorkerJobs:
    def test_jobs_fan_out_over_processes(self, tmp_path):
        specs = _grid(10)
        thread = CoordinatorThread(
            _coordinator(specs, tmp_path, lease_size=5))
        port = thread.start()
        summaries = _run_workers(port, 1, jobs=2)
        stats = thread.result()
        assert stats["done"] and stats["completed"] == 10
        assert summaries[0].points == 10
        assert merge_results(specs, tmp_path) == \
            SweepRunner(jobs=1).run(specs)

    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepWorker("127.0.0.1", 1, jobs=0)
        with pytest.raises(ValueError, match="reconnect_attempts"):
            SweepWorker("127.0.0.1", 1, reconnect_attempts=0)


class TestEndToEndBench:
    def test_subprocess_workers_bitwise_equal(self):
        # The real deployment path: actual `python -m repro sweep work`
        # processes against a coordinator thread, tiny smoke grid.
        from repro.dist.bench import run_dist_bench
        report = run_dist_bench(smoke=True, worker_counts=(1, 2),
                                seeds=1, log=lambda _msg: None)
        assert report["benchmark"] == "dist"
        assert report["bitwise_equal"] is True
        assert report["grid"]["points"] == 8
        for count in ("1", "2"):
            run = report["workers"][count]
            assert run["completed"] == 8
            assert run["bitwise_equal"] is True
        assert "scaling_vs_1" in report["workers"]["2"]
