"""Time-varying links, handovers, and the wireless scenario families.

Property-style coverage of :mod:`repro.topology.wireless` — the rate
walk stays inside its clamp, the delay inside its jitter band, the
whole trajectory is a pure function of ``(dynamics, seed)`` — plus the
scenario-family presets layered on the generator (scheduler mixes,
finite transfers, per-family radio models).
"""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.topology import (
    FAMILY_PRESETS,
    LinkDynamics,
    TimeVaryingLink,
    build_random_scenario,
    family_config,
    generate_family,
)
from repro.topology.generator import GeneratorConfig
from repro.topology.wireless import OUTAGE_RATE_BPS


def _driven_link(sim, dynamics, *, rate=1e7, delay=0.03, seed=42):
    link = Link(sim, rate, delay, name="radio")
    return link, TimeVaryingLink(sim, link, dynamics, seed)


def _observe(dynamics, *, horizon=30.0, seed=42, sample_dt=0.01):
    """Run one driven link, sampling (rate, delay) on a fixed clock."""
    sim = Simulator()
    link, driver = _driven_link(sim, dynamics, seed=seed)
    samples = []

    def sample():
        samples.append((link.rate_bps, link.delay))
        if sim.now < horizon:
            sim.schedule(sample_dt, sample)

    driver.start()
    sim.schedule(0.0, sample)
    sim.run(until=horizon)
    return driver, samples


class TestLinkDynamicsValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="rate_range"):
            LinkDynamics(rate_range=(0.0, 1e6))
        with pytest.raises(ValueError, match="rate_range"):
            LinkDynamics(rate_range=(2e6, 1e6))
        with pytest.raises(ValueError, match="change_interval"):
            LinkDynamics(rate_range=(1e6, 2e6), change_interval=0.0)
        with pytest.raises(ValueError, match="rate_sigma"):
            LinkDynamics(rate_range=(1e6, 2e6), rate_sigma=-0.1)
        with pytest.raises(ValueError, match="delay_jitter"):
            LinkDynamics(rate_range=(1e6, 2e6), delay_jitter=1.0)
        with pytest.raises(ValueError, match="loss_rate"):
            LinkDynamics(rate_range=(1e6, 2e6), loss_rate=1.0)
        with pytest.raises(ValueError, match="outage"):
            LinkDynamics(rate_range=(1e6, 2e6), handover_interval=1.0,
                         handover_outage=0.0)

    def test_family_presets_carry_valid_dynamics(self):
        for family, config in FAMILY_PRESETS.items():
            if config.link_dynamics is not None:
                assert isinstance(config.link_dynamics, LinkDynamics), \
                    family


class TestRateAndDelayBounds:
    DYNAMICS = LinkDynamics(rate_range=(2e6, 4e7), change_interval=0.05,
                            rate_sigma=0.6, delay_jitter=0.25)

    def test_rate_walk_stays_clamped(self):
        driver, samples = _observe(self.DYNAMICS)
        assert driver.changes > 100
        low, high = self.DYNAMICS.rate_range
        for rate, _ in samples:
            assert low <= rate <= high

    def test_delay_jitters_inside_its_band(self):
        _, samples = _observe(self.DYNAMICS)
        delays = {delay for _, delay in samples}
        assert len(delays) > 10, "delay never jittered"
        for delay in delays:
            assert 0.03 * 0.75 <= delay <= 0.03 * 1.25

    def test_zero_sigma_freezes_the_rate(self):
        frozen = LinkDynamics(rate_range=(2e6, 4e7), change_interval=0.05,
                              rate_sigma=0.0, delay_jitter=0.2)
        _, samples = _observe(frozen)
        assert {rate for rate, _ in samples} == {1e7}
        assert len({delay for _, delay in samples}) > 10


class TestDeterminism:
    DYNAMICS = LinkDynamics(rate_range=(2e6, 4e7), change_interval=0.1,
                            rate_sigma=0.4, delay_jitter=0.2,
                            handover_interval=3.0, handover_outage=0.05)

    def test_same_seed_same_trajectory(self):
        one_driver, one = _observe(self.DYNAMICS, seed=5)
        two_driver, two = _observe(self.DYNAMICS, seed=5)
        assert one == two
        assert one_driver.changes == two_driver.changes
        assert one_driver.handovers == two_driver.handovers

    def test_different_seeds_diverge(self):
        _, one = _observe(self.DYNAMICS, seed=5)
        _, two = _observe(self.DYNAMICS, seed=6)
        assert one != two

    def test_trajectory_independent_of_traffic(self):
        """Private RNG: adding traffic must not shift the radio draws."""
        sim = Simulator()
        link, driver = _driven_link(sim, self.DYNAMICS, seed=9)
        driver.start()
        # Interleave unrelated events that would perturb a shared RNG.
        for i in range(200):
            sim.schedule(i * 0.11, lambda: None)
        sim.schedule(0.0, lambda: None)
        sim.run(until=20.0)
        baseline_changes = driver.changes
        baseline_rate = link.rate_bps

        sim2 = Simulator()
        link2, driver2 = _driven_link(sim2, self.DYNAMICS, seed=9)
        driver2.start()
        sim2.run(until=20.0)
        assert driver2.changes == baseline_changes
        assert link2.rate_bps == baseline_rate


class TestHandover:
    DYNAMICS = LinkDynamics(rate_range=(2e6, 4e7), change_interval=0.2,
                            rate_sigma=0.3, delay_jitter=0.2,
                            handover_interval=1.0, handover_outage=0.08)

    def test_handovers_happen_and_outage_rate_is_visible(self):
        driver, samples = _observe(self.DYNAMICS, horizon=40.0)
        assert driver.handovers > 10
        outage_samples = [r for r, _ in samples if r == OUTAGE_RATE_BPS]
        assert outage_samples, "outage rate never observed"

    def test_reattach_redraws_inside_the_range(self):
        driver, samples = _observe(self.DYNAMICS, horizon=40.0)
        low, high = self.DYNAMICS.rate_range
        for rate, _ in samples:
            assert rate == OUTAGE_RATE_BPS or low <= rate <= high

    def test_stop_freezes_the_link(self):
        sim = Simulator()
        link, driver = _driven_link(sim, self.DYNAMICS)
        driver.start()
        sim.run(until=5.0)
        driver.stop()
        frozen = (link.rate_bps, link.delay)
        changes = driver.changes
        sim.run(until=15.0)
        assert (link.rate_bps, link.delay) == frozen
        assert driver.changes == changes


class TestFamilies:
    def test_known_families(self):
        assert set(FAMILY_PRESETS) == {"wired", "dual_lte", "wifi_lte",
                                       "handover"}
        with pytest.raises(ValueError, match="wired"):
            family_config("bogus")

    def test_family_config_returns_copies(self):
        assert family_config("dual_lte") == FAMILY_PRESETS["dual_lte"]

    def test_generate_family_runs_and_completes_transfers(self):
        sim = Simulator()
        scenario = generate_family(sim, "dual_lte", seed=3, max_flows=8)
        scenario.start()
        sim.run(until=20.0)
        assert len(scenario.transfer_times) == len(scenario.bulk_flows)
        assert all(t > 0 for t in scenario.transfer_times)
        assert sum(d.changes for d in scenario.dynamics) > 0

    def test_schedulers_override_replaces_the_mix(self):
        sim = Simulator()
        scenario = generate_family(sim, "wired", seed=3, max_flows=8,
                                   schedulers=("redundant",))
        assert {d.scheduler for d in scenario.flow_descriptions} \
            == {"redundant"}

    def test_describe_names_schedulers_and_dynamics(self):
        sim = Simulator()
        scenario = generate_family(sim, "handover", seed=4, max_flows=6)
        description = scenario.describe()
        assert description["dynamics"] is not None
        schedulers = {flow[3] for flow in description["flows"]}
        assert schedulers <= {"minrtt", "roundrobin", "redundant",
                              "qaware"}

    def test_wired_family_has_no_radio(self):
        sim = Simulator()
        scenario = generate_family(sim, "wired", seed=5, max_flows=6)
        assert scenario.dynamics == []
        assert scenario.describe()["dynamics"] is None


class TestGeneratorConfigValidation:
    def test_scheduler_mix_names_are_validated(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            GeneratorConfig(n_flows=4, n_links=4,
                            scheduler_mix=(("fifo", 1.0),))

    def test_scheduler_mix_needs_positive_weight(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_flows=4, n_links=4, scheduler_mix=())

    def test_transfer_packets_must_be_positive(self):
        with pytest.raises(ValueError, match="transfer_packets"):
            GeneratorConfig(n_flows=4, n_links=4, transfer_packets=0)

    def test_default_streams_unchanged_without_dynamics(self):
        """Adding the new knobs at their defaults must not consume any
        extra RNG draws: the classic preset structure is frozen."""
        one = build_random_scenario(
            Simulator(), random.Random(11),
            GeneratorConfig(n_flows=6, n_links=4)).describe()
        two = build_random_scenario(
            Simulator(), random.Random(11),
            GeneratorConfig(n_flows=6, n_links=4)).describe()
        assert one == two
        assert one["dynamics"] is None
