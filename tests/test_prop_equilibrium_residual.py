"""Property test: solve_fixed_point residuals vanish under every rule.

For random feasible two-link topologies, the converged fixed point must
be a *fixed point of the registry's own allocation rule*: re-applying
the rule to the equilibrium losses reproduces the rates to near-zero
residual, for every equilibrium-capable spec (plus the parameterised
epsilon family at a drawn epsilon).  This is the numeric face of the
SMT layer's uniqueness claim — there is one fixed point, and the
damped iteration lands on it.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.core import registry
from repro.fluid import FluidNetwork, SharpLoss, solve_fixed_point
from repro.units import mbps_to_pps

#: Residual tolerance, relative to a user's largest route rate.
RESIDUAL_RTOL = 1e-4


def _equilibrium_rules(epsilon):
    """(label, rule-or-name) for every spec runnable without params."""
    rules = []
    for spec in registry.algorithm_specs():
        if spec.has_equilibrium and not spec.required_params("equilibrium"):
            rules.append((spec.name, spec.name))
    rules.append(("epsilon", registry.make_allocation_rule(
        "epsilon", epsilon=epsilon)))
    return rules


@st.composite
def topologies(draw):
    return {
        "c1_mbps": draw(st.floats(0.8, 3.0)),
        "c2_mbps": draw(st.floats(0.8, 3.0)),
        "rtt_mp": draw(st.floats(0.05, 0.25)),
        "rtt_tcp": draw(st.floats(0.05, 0.25)),
        "n_tcp": draw(st.integers(1, 3)),
        "epsilon": draw(st.floats(0.25, 2.0)),
    }


def _build(topo, mp_rule):
    net = FluidNetwork()
    l1 = net.add_link(SharpLoss(capacity=mbps_to_pps(topo["c1_mbps"])))
    l2 = net.add_link(SharpLoss(capacity=mbps_to_pps(topo["c2_mbps"])))
    rules = {}
    mp = net.add_user("mp")
    net.add_route(mp, [l1], rtt=topo["rtt_mp"])
    net.add_route(mp, [l1, l2], rtt=topo["rtt_mp"])
    rules[mp] = mp_rule
    for i in range(topo["n_tcp"]):
        user = net.add_user(f"tcp{i}")
        net.add_route(user, [l2], rtt=topo["rtt_tcp"])
        rules[user] = "tcp"
    return net, rules


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(topo=topologies())
def test_fixed_point_residual_near_zero(topo):
    for label, mp_rule in _equilibrium_rules(topo["epsilon"]):
        net, rules = _build(topo, mp_rule)
        result = solve_fixed_point(net, rules, floor_packets=0.0)
        assert result.converged, (label, topo)
        rtts = net.rtt_array()
        resolved = {user: (rule if callable(rule)
                           else registry.make_allocation_rule(rule))
                    for user, rule in rules.items()}
        for user, routes in enumerate(net.routes_of_user):
            idx = np.asarray(routes)
            target = np.asarray(resolved[user](
                result.route_loss[idx], rtts[idx]), dtype=float)
            rates = result.rates[idx]
            scale = max(float(np.max(np.abs(rates))), 1e-9)
            residual = float(np.max(np.abs(target - rates)))
            assert residual <= RESIDUAL_RTOL * scale, (
                label, user, residual / scale, topo)
