"""Tests for the scenario B closed forms (Fig. 4, Tables I/II, Fig. 17)."""

import pytest

from repro.analysis import scenario_b
from repro.units import mbps_to_pps, pps_to_mbps


def paper_setting(cx_mbps=27.0):
    """Testbed setting: CT=36 Mbps, 15+15 users, RTT 150 ms."""
    return dict(n_users=15, cx=mbps_to_pps(cx_mbps), ct=mbps_to_pps(36.0),
                rtt=0.15)


class TestLiaMultipath:
    def test_capacity_constraints_quadratic_branch(self):
        setting = paper_setting(cx_mbps=36.0 * 0.4)  # CX/CT = 0.4 < 5/9
        res = scenario_b.lia_multipath(**setting)
        n = res.n_users
        assert n * (res.x1 + res.y1) == pytest.approx(res.cx, rel=1e-6)
        assert n * (res.x2 + res.y1 + res.y2) == pytest.approx(res.ct,
                                                               rel=1e-6)

    def test_capacity_constraints_quintic_branch(self):
        setting = paper_setting(cx_mbps=27.0)  # CX/CT = 0.75 > 5/9
        res = scenario_b.lia_multipath(**setting)
        n = res.n_users
        assert n * (res.x1 + res.y1) == pytest.approx(res.cx, rel=1e-6)
        assert n * (res.x2 + res.y1 + res.y2) == pytest.approx(res.ct,
                                                               rel=1e-6)

    def test_loss_ordering_by_branch(self):
        low = scenario_b.lia_multipath(**paper_setting(cx_mbps=36.0 * 0.4))
        assert low.p_x > low.p_t
        high = scenario_b.lia_multipath(**paper_setting(cx_mbps=27.0))
        assert high.p_t > high.p_x

    def test_branches_continuous_at_5_9(self):
        ct = mbps_to_pps(36.0)
        eps = 1e-4
        below = scenario_b.lia_multipath(
            n_users=15, cx=ct * (5 / 9 - eps), ct=ct, rtt=0.15)
        above = scenario_b.lia_multipath(
            n_users=15, cx=ct * (5 / 9 + eps), ct=ct, rtt=0.15)
        assert below.blue_rate == pytest.approx(above.blue_rate, rel=1e-2)
        assert below.red_rate == pytest.approx(above.red_rate, rel=1e-2)

    def test_loss_throughput_consistency(self):
        """Each rate matches the LIA loss-throughput formulas."""
        res = scenario_b.lia_multipath(**paper_setting())
        z = res.p_x / res.p_t
        s_best = (2.0 / min(res.p_x, res.p_t)) ** 0.5 / res.rtt
        assert res.x1 == pytest.approx(s_best / (1.0 + z), rel=1e-6)
        assert res.y2 == pytest.approx(
            (res.p_x + res.p_t) / res.p_t * res.y1, rel=1e-6)


class TestUpgradeHurtsEveryone:
    def test_problem_p1_all_users_lose(self):
        """Fig. 4(a): for all CX/CT, upgrading Red lowers both classes."""
        for cx_frac in (0.3, 0.5, 0.75, 1.0, 1.4):
            setting = paper_setting(cx_mbps=36.0 * cx_frac)
            single = scenario_b.lia_singlepath(**setting)
            multi = scenario_b.lia_multipath(**setting)
            assert multi.blue_rate < single.blue_rate * 1.001
            assert multi.red_rate < single.red_rate * 1.001
            assert multi.aggregate < single.aggregate

    def test_paper_magnitude_21_percent_blue_drop(self):
        """Paper: at CX/CT ~= 0.75 Blue users lose up to 21% with LIA."""
        setting = paper_setting(cx_mbps=27.0)
        single = scenario_b.lia_singlepath(**setting)
        multi = scenario_b.lia_multipath(**setting)
        drop = 1.0 - multi.blue_rate / single.blue_rate
        assert drop == pytest.approx(0.21, abs=0.08)

    def test_optimum_drop_is_only_probing(self):
        """Fig. 4(b): with the optimum the aggregate drop is ~N/rtt."""
        setting = paper_setting(cx_mbps=27.0)
        single = scenario_b.optimum_singlepath(**setting)
        multi = scenario_b.optimum_multipath(**setting)
        agg_drop = single.aggregate - multi.aggregate
        probing = setting["n_users"] / setting["rtt"]
        assert agg_drop == pytest.approx(probing, rel=0.2)

    def test_paper_3_percent_optimum_drop(self):
        """Paper: ~3% Blue drop with an optimal algorithm at CX/CT=0.75."""
        setting = paper_setting(cx_mbps=27.0)
        single = scenario_b.optimum_singlepath(**setting)
        multi = scenario_b.optimum_multipath(**setting)
        drop = 1.0 - multi.blue_rate / single.blue_rate
        assert 0.0 <= drop <= 0.06


class TestTablePredictions:
    def test_table1_lia_aggregate_drop_about_13_percent(self):
        """Table I: aggregate falls by 13% when Red upgrade under LIA."""
        setting = paper_setting(cx_mbps=27.0)
        single = scenario_b.lia_singlepath(**setting)
        multi = scenario_b.lia_multipath(**setting)
        drop = 1.0 - multi.aggregate / single.aggregate
        assert drop == pytest.approx(0.13, abs=0.07)

    def test_table2_olia_aggregate_drop_about_3_5_percent(self):
        """Table II: only ~3.5% aggregate drop with OLIA."""
        setting = paper_setting(cx_mbps=27.0)
        single = scenario_b.olia_singlepath(**setting)
        multi = scenario_b.olia_multipath(**setting)
        drop = 1.0 - multi.aggregate / single.aggregate
        assert drop == pytest.approx(0.035, abs=0.03)

    def test_single_path_rates_near_cutset(self):
        """Paper: single-path aggregate close to the 63 Mbps cut-set."""
        setting = paper_setting(cx_mbps=27.0)
        single = scenario_b.olia_singlepath(**setting)
        assert pps_to_mbps(single.aggregate) == pytest.approx(63.0, rel=0.05)

    def test_blue_gets_more_than_red_single_path_lia(self):
        """Table I: with LIA, Blue (multihomed) users out-earn Red.

        The optimum (and OLIA's prediction) instead pools to the fair
        share, so Blue and Red tie there — matching the smaller gap of
        Table II (2.2 vs 1.8, against LIA's 2.5 vs 1.5).
        """
        setting = paper_setting(cx_mbps=27.0)
        lia = scenario_b.lia_singlepath(**setting)
        assert lia.blue_rate > lia.red_rate * 1.2
        olia = scenario_b.olia_singlepath(**setting)
        assert olia.blue_rate == pytest.approx(olia.red_rate, rel=0.01)
        # OLIA's allocation is less skewed than LIA's.
        assert (olia.blue_rate / olia.red_rate
                < lia.blue_rate / lia.red_rate)

    def test_table1_lia_matches_measured_rates(self):
        """Paper Table I (measured): Blue 2.5, Red 1.5 Mbps per user."""
        res = scenario_b.lia_singlepath(**paper_setting(cx_mbps=27.0))
        assert pps_to_mbps(res.blue_rate) == pytest.approx(2.5, abs=0.2)
        assert pps_to_mbps(res.red_rate) == pytest.approx(1.5, abs=0.25)


class TestFig17RttSensitivity:
    def test_lower_rtt_means_larger_probing_penalty(self):
        """Fig. 17: the probing overhead scales as 1/RTT."""
        drops = {}
        for rtt in (0.025, 0.1, 0.15):
            setting = dict(n_users=15, cx=mbps_to_pps(27.0),
                           ct=mbps_to_pps(36.0), rtt=rtt)
            single = scenario_b.optimum_singlepath(**setting)
            multi = scenario_b.optimum_multipath(**setting)
            drops[rtt] = single.aggregate - multi.aggregate
        assert drops[0.025] > drops[0.1] > drops[0.15]
        assert drops[0.025] == pytest.approx(15.0 / 0.025, rel=0.2)


class TestValidation:
    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            scenario_b.lia_multipath(n_users=0, cx=1.0, ct=1.0, rtt=0.1)
        with pytest.raises(ValueError):
            scenario_b.lia_multipath(n_users=1, cx=0.0, ct=1.0, rtt=0.1)
        with pytest.raises(ValueError):
            scenario_b.optimum_multipath(n_users=1, cx=1.0, ct=1.0, rtt=0.0)

    def test_probing_saturation_detected(self):
        with pytest.raises(ValueError):
            # CT so small that probing exceeds it.
            scenario_b.optimum_multipath(n_users=10, cx=100.0, ct=50.0,
                                         rtt=0.1)
