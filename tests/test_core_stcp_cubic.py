"""Unit tests for the Scalable TCP and CUBIC controllers (Remark 3)."""

import pytest

from repro.core import CubicController, ScalableTcpController, SubflowState


class TestScalableTcp:
    def test_constant_increment(self):
        ctrl = ScalableTcpController()
        ctrl.register_subflow(0, SubflowState(cwnd=100.0, rtt=0.1))
        assert ctrl.increase_increment(0) == pytest.approx(0.01)
        ctrl.subflows[0].cwnd = 5.0
        assert ctrl.increase_increment(0) == pytest.approx(0.01)

    def test_multiplicative_decrease(self):
        ctrl = ScalableTcpController()
        ctrl.register_subflow(0, SubflowState(cwnd=100.0, rtt=0.1))
        assert ctrl.decrease_on_loss(0) == pytest.approx(87.5)

    def test_decrease_floors_at_one(self):
        ctrl = ScalableTcpController()
        ctrl.register_subflow(0, SubflowState(cwnd=1.05, rtt=0.1))
        assert ctrl.decrease_on_loss(0) == 1.0

    def test_exponential_growth(self):
        """w(t) grows multiplicatively: a fraction a per ACK, w ACKs/RTT."""
        ctrl = ScalableTcpController()
        state = SubflowState(cwnd=10.0, rtt=0.1)
        ctrl.register_subflow(0, state)
        for _ in range(100):  # ~10 RTTs of ACKs at w=10
            ctrl.increase_on_ack(0)
        assert state.cwnd == pytest.approx(11.0)

    def test_loss_rolls_interloss_counters(self):
        ctrl = ScalableTcpController()
        state = SubflowState(cwnd=10.0, rtt=0.1)
        ctrl.register_subflow(0, state)
        ctrl.increase_on_ack(0, acked_packets=4)
        ctrl.decrease_on_loss(0)
        assert state.bytes_between_last_losses == 6000.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ScalableTcpController(a=0.0)
        with pytest.raises(ValueError):
            ScalableTcpController(b=1.0)

    def test_registry_name(self):
        from repro.core import make_controller
        assert isinstance(make_controller("stcp"), ScalableTcpController)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCubic:
    def test_target_at_epoch_is_below_wmax(self):
        clock = FakeClock()
        ctrl = CubicController(clock)
        ctrl.register_subflow(0, SubflowState(cwnd=10.0, rtt=0.1))
        ctrl.decrease_on_loss(0)  # sets W_max = 10, epoch = 0
        # Immediately after a loss the target is W_max * (1 - beta).
        assert ctrl.target_window(0) == pytest.approx(
            10.0 - CubicController.C_SCALE * ctrl._k(0) ** 3)
        assert ctrl.target_window(0) == pytest.approx(7.0)

    def test_target_recovers_wmax_at_k(self):
        clock = FakeClock()
        ctrl = CubicController(clock)
        ctrl.register_subflow(0, SubflowState(cwnd=20.0, rtt=0.1))
        ctrl.decrease_on_loss(0)
        clock.t = ctrl._k(0)
        assert ctrl.target_window(0) == pytest.approx(20.0)

    def test_growth_accelerates_beyond_k(self):
        clock = FakeClock()
        ctrl = CubicController(clock)
        state = SubflowState(cwnd=20.0, rtt=0.1)
        ctrl.register_subflow(0, state)
        ctrl.decrease_on_loss(0)
        k = ctrl._k(0)
        clock.t = k + 2.0
        assert ctrl.target_window(0) > 20.0
        increment = ctrl.increase_increment(0)
        assert increment > 0.1  # far from target -> big step

    def test_plateau_near_wmax_is_gentle(self):
        clock = FakeClock()
        ctrl = CubicController(clock)
        state = SubflowState(cwnd=20.0, rtt=0.1)
        ctrl.register_subflow(0, state)
        ctrl.decrease_on_loss(0)
        clock.t = ctrl._k(0)
        state.cwnd = 20.0  # at the plateau exactly
        assert ctrl.increase_increment(0) <= 0.01 / 20.0 + 1e-12

    def test_decrease_factor(self):
        clock = FakeClock()
        ctrl = CubicController(clock)
        state = SubflowState(cwnd=20.0, rtt=0.1)
        ctrl.register_subflow(0, state)
        assert ctrl.decrease_on_loss(0) == pytest.approx(14.0)

    def test_rtt_insensitivity(self):
        """Two CUBIC flows with different RTTs grow identically in time.

        This is the property Remark 3 wants: growth depends on elapsed
        time, not on the ACK clock.  We emulate flows by applying the
        per-ACK rule with ACK counts proportional to 1/rtt.
        """
        clock = FakeClock()
        ctrl = CubicController(clock)
        fast = SubflowState(cwnd=10.0, rtt=0.01)
        slow = SubflowState(cwnd=10.0, rtt=0.1)
        ctrl.register_subflow(0, fast)
        ctrl.register_subflow(1, slow)
        ctrl.decrease_on_loss(0)
        ctrl.decrease_on_loss(1)
        # Advance 1 second; the fast flow sees 10x more ACKs.
        for step in range(100):
            clock.t += 0.01
            for _ in range(10):
                ctrl.increase_on_ack(0)
            ctrl.increase_on_ack(1)
        assert fast.cwnd == pytest.approx(slow.cwnd, rel=0.1)

    def test_remove_subflow_cleans_state(self):
        clock = FakeClock()
        ctrl = CubicController(clock)
        ctrl.register_subflow(0, SubflowState())
        ctrl.remove_subflow(0)
        assert ctrl._w_max == {}
        assert ctrl._epoch == {}
