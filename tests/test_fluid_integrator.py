"""Integration tests for the fluid Euler integrator."""

import numpy as np
import pytest

from repro.fluid import (
    FluidNetwork,
    PowerLoss,
    equilibrium_rate_for_tcp,
    integrate,
    integrate_to_equilibrium,
)


def single_link_net(capacity=100.0, rtt=0.1, n_users=1):
    net = FluidNetwork()
    link = net.add_link(PowerLoss(capacity=capacity, p_at_capacity=0.02,
                                  exponent=4.0))
    for i in range(n_users):
        user = net.add_user(f"u{i}")
        net.add_route(user, [link], rtt=rtt)
    return net


def two_path_net(c1=100.0, c2=100.0, rtt=0.1):
    """One multipath user with a private path per AP (no competition)."""
    net = FluidNetwork()
    l1 = net.add_link(PowerLoss(capacity=c1, p_at_capacity=0.02))
    l2 = net.add_link(PowerLoss(capacity=c2, p_at_capacity=0.02))
    user = net.add_user("mp")
    net.add_route(user, [l1], rtt=rtt)
    net.add_route(user, [l2], rtt=rtt)
    return net


class TestTcpConvergence:
    def test_single_tcp_reaches_formula_equilibrium(self):
        net = single_link_net()
        expected = equilibrium_rate_for_tcp(net.loss_model(0), 0.1)
        traj = integrate(net, "tcp", t_end=60.0, dt=2e-3)
        assert traj.final_rates[0] == pytest.approx(expected, rel=0.02)

    def test_two_tcp_users_share_equally(self):
        net = single_link_net(n_users=2)
        traj = integrate(net, "tcp", t_end=60.0, dt=2e-3)
        x = traj.final_rates
        assert x[0] == pytest.approx(x[1], rel=1e-3)

    def test_trajectory_shapes(self):
        net = single_link_net()
        traj = integrate(net, "tcp", t_end=1.0, dt=1e-3, record_every=100)
        assert traj.rates.shape[0] == len(traj.times)
        assert traj.rates.shape[1] == net.n_routes
        assert traj.times[0] == 0.0
        assert traj.times[-1] == pytest.approx(1.0)

    def test_invalid_arguments(self):
        net = single_link_net()
        with pytest.raises(ValueError):
            integrate(net, "tcp", t_end=0.0)
        with pytest.raises(ValueError):
            integrate(net, "tcp", t_end=1.0, dt=-1e-3)

    def test_floor_respected(self):
        net = single_link_net()
        traj = integrate(net, "tcp", t_end=1.0, dt=1e-3, floor_packets=2.0)
        assert np.all(traj.rates >= 2.0 / 0.1 - 1e-9)


class TestMultipathConvergence:
    def test_olia_uses_both_equal_paths(self):
        """Symmetric two-path user: both routes converge to similar rates."""
        net = two_path_net()
        traj = integrate(net, "olia", t_end=120.0, dt=2e-3)
        x = traj.tail_average()
        assert x[0] == pytest.approx(x[1], rel=0.2)
        assert x[0] > 50.0  # well above the probing floor

    def test_olia_abandons_congested_path(self):
        """Asymmetric capacities: the narrow path keeps only probing traffic."""
        net = FluidNetwork()
        l1 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        l2 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        mp = net.add_user("mp")
        net.add_route(mp, [l1], rtt=0.1)
        net.add_route(mp, [l2], rtt=0.1)
        # Ten TCP users crowd the second link.
        for i in range(10):
            u = net.add_user(f"tcp{i}")
            net.add_route(u, [l2], rtt=0.1)
        traj = integrate(net, "olia", t_end=120.0, dt=2e-3)
        x = traj.tail_average()
        floor = 1.0 / 0.1  # one packet per RTT
        assert x[1] <= floor * 1.05
        assert x[0] > 8 * floor

    def test_lia_keeps_traffic_on_congested_path(self):
        """Same asymmetric case: LIA sends a visible share over link 2.

        This is the root of problems P1/P2 — compare with the OLIA test
        above.
        """
        net = FluidNetwork()
        l1 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        l2 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        mp = net.add_user("mp")
        net.add_route(mp, [l1], rtt=0.1)
        net.add_route(mp, [l2], rtt=0.1)
        for i in range(10):
            u = net.add_user(f"tcp{i}")
            net.add_route(u, [l2], rtt=0.1)
        traj = integrate(net, "lia", t_end=120.0, dt=2e-3)
        x = traj.tail_average()
        # LIA's Eq. (2) gives the congested path w ~ 1/p share, clearly
        # more than OLIA's probing-only traffic.
        assert x[1] > 0.05 * x[0]

    def test_mixed_algorithms_per_user(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(capacity=100.0))
        u0 = net.add_user()
        net.add_route(u0, [link], rtt=0.1)
        u1 = net.add_user()
        net.add_route(u1, [link], rtt=0.1)
        traj = integrate(net, {0: "tcp", 1: "olia"}, t_end=30.0, dt=2e-3)
        x = traj.final_rates
        # A single-path OLIA user behaves exactly like TCP.
        assert x[0] == pytest.approx(x[1], rel=0.05)


class TestEquilibriumDriver:
    def test_converges_and_stops_early(self):
        net = single_link_net()
        traj = integrate_to_equilibrium(net, "tcp", dt=2e-3, chunk=10.0,
                                        max_time=200.0)
        expected = equilibrium_rate_for_tcp(net.loss_model(0), 0.1)
        assert traj.tail_average()[0] == pytest.approx(expected, rel=0.02)

    def test_tail_average_validation(self):
        net = single_link_net()
        traj = integrate(net, "tcp", t_end=1.0, dt=1e-3)
        with pytest.raises(ValueError):
            traj.tail_average(fraction=0.0)

    def test_user_totals_series(self):
        net = two_path_net()
        traj = integrate(net, "olia", t_end=5.0, dt=2e-3)
        totals = traj.user_totals()
        assert totals.shape == (traj.rates.shape[0], 1)
        assert np.allclose(totals[:, 0], traj.rates.sum(axis=1))
