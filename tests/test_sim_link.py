"""Unit tests for the store-and-forward link."""

import pytest

from repro.sim import DropTailQueue, Link, Packet, Simulator
from repro.units import MSS_BYTES


class Sink:
    """Records delivered packets and their arrival times."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def on_data(self, packet):
        self.received.append((self.sim.now, packet.seq))


def send(sim, path, sink, seq=0, size=MSS_BYTES):
    packet = Packet(sink, seq, tuple(path), size_bytes=size)
    path[0].receive(packet)
    return packet


class TestSingleLink:
    def test_delivery_time_is_service_plus_delay(self):
        sim = Simulator()
        link = Link(sim, rate_bps=12_000_000, delay=0.01)  # 1ms service
        sink = Sink(sim)
        send(sim, [link], sink)
        sim.run(until=1.0)
        assert sink.received == [(pytest.approx(0.011), 0)]

    def test_back_to_back_packets_serialise(self):
        sim = Simulator()
        link = Link(sim, rate_bps=12_000_000, delay=0.0)
        sink = Sink(sim)
        for seq in range(3):
            send(sim, [link], sink, seq=seq)
        sim.run(until=1.0)
        times = [t for t, _ in sink.received]
        assert times == [pytest.approx(0.001), pytest.approx(0.002),
                         pytest.approx(0.003)]

    def test_queue_overflow_drops_and_counts(self):
        sim = Simulator()
        link = Link(sim, rate_bps=12_000_000, delay=0.0,
                    queue=DropTailQueue(limit=2))
        sink = Sink(sim)
        for seq in range(5):
            send(sim, [link], sink, seq=seq)
        sim.run(until=1.0)
        # 1 in service + 2 queued; the other 2 dropped.
        assert len(sink.received) == 3
        assert link.stats.arrivals == 5
        assert link.stats.drops == 2
        assert link.stats.loss_probability == pytest.approx(0.4)

    def test_throughput_capped_at_rate(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1_200_000, delay=0.0,
                    queue=DropTailQueue(limit=1000))  # 100 pkt/s
        sink = Sink(sim)
        for seq in range(200):
            send(sim, [link], sink, seq=seq)
        sim.run(until=1.0)
        assert len(sink.received) == pytest.approx(100, abs=1)

    def test_utilization(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1_200_000, delay=0.0,
                    queue=DropTailQueue(limit=1000))
        sink = Sink(sim)
        for seq in range(50):
            send(sim, [link], sink, seq=seq)
        sim.run(until=1.0)
        assert link.stats.utilization(sim.now, link.rate_bps) == \
            pytest.approx(0.5, rel=0.05)

    def test_stats_reset_for_warmup(self):
        sim = Simulator()
        link = Link(sim, rate_bps=12_000_000, delay=0.0)
        sink = Sink(sim)
        send(sim, [link], sink)
        sim.run(until=0.5)
        link.stats.reset(sim.now)
        assert link.stats.arrivals == 0
        assert link.stats.loss_probability == 0.0


class TestMultiHopPath:
    def test_packet_traverses_all_hops(self):
        sim = Simulator()
        l1 = Link(sim, rate_bps=12_000_000, delay=0.005, name="l1")
        l2 = Link(sim, rate_bps=12_000_000, delay=0.005, name="l2")
        sink = Sink(sim)
        send(sim, [l1, l2], sink)
        sim.run(until=1.0)
        # Two service times (1 ms) + two propagation delays (5 ms).
        assert sink.received[0][0] == pytest.approx(0.012)

    def test_bottleneck_shapes_flow(self):
        sim = Simulator()
        fast = Link(sim, rate_bps=12_000_000, delay=0.0, name="fast",
                    queue=DropTailQueue(limit=1000))
        slow = Link(sim, rate_bps=1_200_000, delay=0.0, name="slow",
                    queue=DropTailQueue(limit=1000))
        sink = Sink(sim)
        for seq in range(100):
            send(sim, [fast, slow], sink)
        sim.run(until=1.0)
        # The slow link serves 100 pkt/s.
        assert len(sink.received) == pytest.approx(100, abs=2)


class TestValidation:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Link(Simulator(), rate_bps=0.0, delay=0.0)

    def test_invalid_delay(self):
        with pytest.raises(ValueError):
            Link(Simulator(), rate_bps=1.0, delay=-0.1)
