"""Unit tests for drop-tail and RED queues."""

import random

import pytest

from repro.sim import DropTailQueue, Packet, REDQueue


def make_packet(seq=0):
    return Packet(endpoint=None, seq=seq, path=())


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue(limit=10)
        first, second = make_packet(1), make_packet(2)
        assert queue.try_enqueue(first)
        assert queue.try_enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second
        assert queue.dequeue() is None

    def test_drops_when_full(self):
        queue = DropTailQueue(limit=2)
        assert queue.try_enqueue(make_packet())
        assert queue.try_enqueue(make_packet())
        assert not queue.try_enqueue(make_packet())
        assert len(queue) == 2

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            DropTailQueue(limit=0)


class TestRed:
    def test_never_drops_below_min_th(self):
        queue = REDQueue(random.Random(1), min_th=25, max_th=50, limit=300)
        for i in range(25):
            assert queue.try_enqueue(make_packet(i))

    def test_paper_drop_curve(self):
        """p = 0 at min_th, p_max at max_th, 1 at 2*max_th."""
        queue = REDQueue(random.Random(1), min_th=25, max_th=50, p_max=0.1)
        queue.avg = 25.0
        assert queue.drop_probability() == pytest.approx(0.0)
        queue.avg = 37.5
        assert queue.drop_probability() == pytest.approx(0.05)
        queue.avg = 50.0 - 1e-9
        assert queue.drop_probability() == pytest.approx(0.1, abs=1e-6)
        queue.avg = 75.0
        assert queue.drop_probability() == pytest.approx(0.55)
        queue.avg = 100.0
        assert queue.drop_probability() == 1.0

    def test_statistical_drop_rate_between_thresholds(self):
        rng = random.Random(42)
        queue = REDQueue(rng, min_th=5, max_th=1000, p_max=0.5, limit=10_000,
                         ewma_weight=1.0)
        # Hold occupancy near 55 by dequeuing after each arrival attempt.
        for _ in range(55):
            queue.try_enqueue(make_packet())
        drops = 0
        trials = 4000
        for _ in range(trials):
            if queue.try_enqueue(make_packet()):
                queue.dequeue()
            else:
                drops += 1
        expected = queue.drop_probability()
        assert drops / trials == pytest.approx(expected, rel=0.2)

    def test_hard_limit_enforced(self):
        rng = random.Random(1)
        queue = REDQueue(rng, min_th=1e9, max_th=2e9, limit=5)
        for _ in range(5):
            assert queue.try_enqueue(make_packet())
        assert not queue.try_enqueue(make_packet())

    def test_ewma_smooths_average(self):
        rng = random.Random(1)
        queue = REDQueue(rng, min_th=25, max_th=50, ewma_weight=0.1)
        for _ in range(10):
            queue.try_enqueue(make_packet())
        # Instantaneous occupancy is 10 but the EWMA lags behind.
        assert queue.avg < 10.0

    def test_capacity_scaling(self):
        rng = random.Random(1)
        q10 = REDQueue.for_capacity_mbps(rng, 10.0)
        assert q10.min_th == pytest.approx(25.0)
        assert q10.max_th == pytest.approx(50.0)
        assert q10.limit == 300
        q20 = REDQueue.for_capacity_mbps(rng, 20.0)
        assert q20.min_th == pytest.approx(50.0)
        assert q20.limit == 600

    def test_scaling_floors_for_slow_links(self):
        rng = random.Random(1)
        slow = REDQueue.for_capacity_mbps(rng, 0.5)
        assert slow.min_th >= 5.0
        assert slow.limit >= 30

    def test_invalid_parameters(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            REDQueue(rng, min_th=50, max_th=25)
        with pytest.raises(ValueError):
            REDQueue(rng, p_max=0.0)
        with pytest.raises(ValueError):
            REDQueue(rng, ewma_weight=0.0)
