"""The registry-dispatch CI gate (benchmarks/check_registry_gate.py)."""

import importlib.util
import pathlib

_SPEC = importlib.util.spec_from_file_location(
    "check_registry_gate",
    pathlib.Path(__file__).parent.parent / "benchmarks"
    / "check_registry_gate.py")
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)

REPO_SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"


class TestGateOnRepo:
    def test_repo_tree_is_clean(self):
        """The registry is the single dispatch path in this tree."""
        assert gate.scan(REPO_SRC) == []

    def test_main_exit_codes(self, capsys):
        assert gate.main([str(REPO_SRC)]) == 0
        assert "registry gate OK" in capsys.readouterr().out
        assert gate.main(["/no/such/dir"]) == 2


class TestGateDetection:
    def _scan_one(self, tmp_path, text):
        module = tmp_path / "experiments" / "mod.py"
        module.parent.mkdir(exist_ok=True)
        module.write_text(text)
        return gate.scan(tmp_path)

    def test_wrapper_call_flagged(self, tmp_path):
        hits = self._scan_one(
            tmp_path, "rule = allocation_rule('olia')\n")
        assert len(hits) == 1 and hits[0][1] == 1

    def test_wrapper_import_flagged(self, tmp_path):
        hits = self._scan_one(
            tmp_path,
            "from repro.fluid.dynamics import make_fluid_algorithm\n")
        assert len(hits) == 1

    def test_multiline_aliased_wrapper_import_flagged(self, tmp_path):
        """Parenthesized multi-line imports (with an alias) must not
        slip through the line-based scan."""
        hits = self._scan_one(
            tmp_path,
            "from repro.fluid.equilibrium import (\n"
            "    allocation_rule as _ar,\n"
            ")\n"
            "rule = _ar('olia')\n")
        assert len(hits) == 1 and hits[0][1] == 1

    def test_fluid_package_reexport_import_flagged(self, tmp_path):
        hits = self._scan_one(
            tmp_path,
            "from ..fluid import make_fluid_algorithm\n")
        assert len(hits) == 1

    def test_benign_multiline_fluid_import_allowed(self, tmp_path):
        assert self._scan_one(
            tmp_path,
            "from ..fluid import (\n"
            "    FluidNetwork,\n"
            "    integrate,\n"
            ")\n") == []

    def test_registry_import_sanctions_bare_calls(self, tmp_path):
        assert self._scan_one(
            tmp_path,
            "from ..core.registry import make_fluid_algorithm\n"
            "algo = make_fluid_algorithm('lia')\n") == []

    def test_parenthesized_registry_import_sanctions(self, tmp_path):
        assert self._scan_one(
            tmp_path,
            "from ..core.registry import (\n"
            "    AlgorithmSpec,\n"
            "    make_fluid_algorithm,\n"
            ")\n"
            "algo = make_fluid_algorithm('lia')\n") == []

    def test_registry_qualified_call_allowed(self, tmp_path):
        assert self._scan_one(
            tmp_path,
            "from ..core import registry\n"
            "algo = registry.make_fluid_algorithm('lia')\n") == []

    def test_registry_api_name_not_confused(self, tmp_path):
        """make_allocation_rule( must not match allocation_rule(."""
        assert self._scan_one(
            tmp_path,
            "from ..core.registry import make_allocation_rule\n"
            "rule = make_allocation_rule('olia')\n") == []

    def test_core_and_wrapper_modules_exempt(self, tmp_path):
        for relative in ("core/registry.py", "fluid/dynamics.py",
                         "fluid/equilibrium.py", "fluid/__init__.py"):
            module = tmp_path / relative
            module.parent.mkdir(exist_ok=True)
            module.write_text("rule = allocation_rule('olia')\n")
        assert gate.scan(tmp_path) == []

    def test_comments_ignored(self, tmp_path):
        assert self._scan_one(
            tmp_path, "# old: allocation_rule('olia')\n") == []


class TestSchedulerAxisDetection:
    _scan_one = TestGateDetection._scan_one

    def test_concrete_class_construction_flagged(self, tmp_path):
        hits = self._scan_one(
            tmp_path, "policy = RoundRobinScheduler()\n")
        assert len(hits) == 1 and hits[0][1] == 1

    def test_concrete_class_import_flagged(self, tmp_path):
        hits = self._scan_one(
            tmp_path,
            "from repro.sim.packet_scheduler import MinRttScheduler\n")
        assert len(hits) == 1

    def test_sim_package_reexport_import_flagged(self, tmp_path):
        hits = self._scan_one(
            tmp_path,
            "from ..sim import (\n"
            "    Simulator,\n"
            "    RedundantScheduler,\n"
            ")\n")
        assert len(hits) == 1 and hits[0][1] == 1

    def test_base_class_import_allowed(self, tmp_path):
        """Typing against the abstract base is not dispatch."""
        assert self._scan_one(
            tmp_path,
            "from ..sim.packet_scheduler import PacketScheduler\n") == []

    def test_make_scheduler_is_the_sanctioned_path(self, tmp_path):
        assert self._scan_one(
            tmp_path,
            "from ..core.registry import make_scheduler\n"
            "policy = make_scheduler('qaware')\n") == []

    def test_defining_modules_exempt(self, tmp_path):
        for relative in ("core/registry.py", "sim/packet_scheduler.py",
                         "sim/__init__.py"):
            module = tmp_path / relative
            module.parent.mkdir(exist_ok=True)
            module.write_text("policy = QueueAwareScheduler()\n")
        assert gate.scan(tmp_path) == []
