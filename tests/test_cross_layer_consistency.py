"""Cross-layer consistency: every registered algorithm on scenario A.

The registry's contract is that one :class:`AlgorithmSpec` describes
*the same algorithm* in three analytical layers.  This suite proves it
per registered spec: the packet-level DES steady state, the fluid-ODE
equilibrium and the fixed-point allocation must agree on scenario A —
per-path rates and per-class totals, within tolerance.  Algorithms
lacking a layer (STCP, CUBIC) or needing caller-supplied parameters
(CUBIC's clock, the epsilon family's epsilon) are skip-marked from
their capability flags rather than silently dropped.

Tolerances: the two analytical layers are deterministic and tight
(``ANALYTIC_TOL``); the DES brings slow-start, RED randomness and
integer windows, so it gets the loose ``PACKET_TOL`` (the same order
as the pre-existing three-way integration tests).
"""

import random
from functools import lru_cache

import numpy as np
import pytest

from repro.core.registry import algorithm_specs, get_spec, scheduler_specs
from repro.experiments.algorithms import (
    _scenario_a_fluid,
    scheduler_smoke_check,
)
from repro.fluid import integrate, solve_fixed_point
from repro.sim.apps import BulkTransfer
from repro.sim.engine import Simulator
from repro.topology.scenarios import build_scenario_a
from repro.units import mbps_to_pps

N1 = N2 = 6
C_MBPS = 1.0
RTT = 0.15
CAP_PPS = mbps_to_pps(C_MBPS)

#: Normalized-rate tolerance between the two analytical layers.
ANALYTIC_TOL = 0.05
#: Normalized-rate tolerance for the packet simulator against either.
PACKET_TOL = 0.2

ALL_SPECS = [spec.name for spec in algorithm_specs()]


def _require_tri_layer(name):
    """The spec for ``name``, or a capability-flag skip."""
    spec = get_spec(name)
    missing = [layer for layer in ("packet", "fluid", "equilibrium")
               if not spec.supports(layer)]
    if missing:
        pytest.skip(f"{name} has no {'/'.join(missing)} layer "
                    f"(supports: {', '.join(spec.layers)})")
    required = sorted(set(sum((spec.required_params(layer)
                               for layer in spec.layers), ())))
    if required:
        pytest.skip(f"{name} needs caller-supplied parameter(s) "
                    f"{', '.join(required)}")
    return spec


def _fluid_network(algorithm: str):
    """Scenario A as a FluidNetwork — the same builder the CI
    algorithm matrix uses, so both checks exercise one topology."""
    return _scenario_a_fluid(N1, N2, C_MBPS, RTT, algorithm)


@lru_cache(maxsize=None)
def _equilibrium(algorithm: str):
    """Fixed-point per-path type1 means and type2 mean (normalized)."""
    net, rules = _fluid_network(algorithm)
    result = solve_fixed_point(net, rules, floor_packets=1.0)
    assert result.converged, f"{algorithm}: fixed point did not converge"
    type1 = result.rates[:2 * N1].reshape(N1, 2).mean(axis=0) / CAP_PPS
    type2 = float(result.rates[2 * N1:].mean()) / CAP_PPS
    return type1, type2


@lru_cache(maxsize=None)
def _fluid_tail(algorithm: str):
    """Fluid-ODE tail-averaged rates in the same normalized shape."""
    net, rules = _fluid_network(algorithm)
    trajectory = integrate(net, rules, t_end=50.0, dt=2e-3)
    tail = trajectory.tail_average()
    type1 = tail[:2 * N1].reshape(N1, 2).mean(axis=0) / CAP_PPS
    type2 = float(tail[2 * N1:].mean()) / CAP_PPS
    return type1, type2


@lru_cache(maxsize=None)
def _packet_steady_state(algorithm: str, duration: float = 12.0,
                         warmup: float = 8.0):
    """DES steady-state per-path type1 means and type2 mean (normalized).

    Per-path rates come straight off the subflows: acked-packet deltas
    over the post-warmup window, averaged across the N1 type1 users.
    """
    sim = Simulator()
    rng = random.Random(1)
    topo = build_scenario_a(sim, rng, n1=N1, n2=N2, c1_mbps=C_MBPS,
                            c2_mbps=C_MBPS)
    type1 = [BulkTransfer(sim, algorithm, topo.type1_paths,
                          name=f"t1.{i}") for i in range(N1)]
    type2 = [BulkTransfer(sim, "tcp", [topo.type2_path], name=f"t2.{i}")
             for i in range(N2)]
    for flow in type1 + type2:
        flow.start()
    sim.run(until=warmup)
    at_warmup_1 = [[sf.acked_packets for sf in flow.connection.subflows]
                   for flow in type1]
    at_warmup_2 = [flow.acked_packets for flow in type2]
    sim.run(until=warmup + duration)
    per_path = np.array(
        [[(sf.acked_packets - acked) / duration
          for sf, acked in zip(flow.connection.subflows, snapshot)]
         for flow, snapshot in zip(type1, at_warmup_1)])
    type2_rates = np.array([(flow.acked_packets - acked) / duration
                            for flow, acked in zip(type2, at_warmup_2)])
    return per_path.mean(axis=0) / CAP_PPS, \
        float(type2_rates.mean()) / CAP_PPS


@pytest.mark.parametrize("name", ALL_SPECS)
class TestCrossLayerAgreement:
    def test_fluid_ode_matches_fixed_point(self, name):
        """Per-path rates: ODE tail average vs equilibrium allocation."""
        _require_tri_layer(name)
        eq_t1, eq_t2 = _equilibrium(name)
        fl_t1, fl_t2 = _fluid_tail(name)
        assert np.max(np.abs(fl_t1 - eq_t1)) < ANALYTIC_TOL, \
            f"{name}: fluid {fl_t1} vs equilibrium {eq_t1}"
        assert abs(fl_t2 - eq_t2) < ANALYTIC_TOL

    def test_packet_des_matches_fixed_point(self, name):
        """Per-path rates: DES steady state vs equilibrium allocation."""
        spec = _require_tri_layer(name)
        if spec.congestion_measure != "loss":
            pytest.skip(f"{name} is {spec.congestion_measure}-based: the "
                        "DES reacts to a different congestion signal "
                        "than the loss-priced analytic layers")
        eq_t1, eq_t2 = _equilibrium(name)
        pk_t1, pk_t2 = _packet_steady_state(name)
        assert np.max(np.abs(pk_t1 - eq_t1)) < PACKET_TOL, \
            f"{name}: packet {pk_t1} vs equilibrium {eq_t1}"
        assert abs(pk_t2 - eq_t2) < PACKET_TOL

    def test_packet_des_matches_fluid_ode(self, name):
        """Closing the triangle: DES vs the integrated dynamics."""
        spec = _require_tri_layer(name)
        if spec.congestion_measure != "loss":
            pytest.skip(f"{name} is {spec.congestion_measure}-based: the "
                        "DES reacts to a different congestion signal "
                        "than the loss-priced analytic layers")
        fl_t1, fl_t2 = _fluid_tail(name)
        pk_t1, pk_t2 = _packet_steady_state(name)
        assert np.max(np.abs(pk_t1 - fl_t1)) < PACKET_TOL, \
            f"{name}: packet {pk_t1} vs fluid {fl_t1}"
        assert abs(pk_t2 - fl_t2) < PACKET_TOL


class TestSchedulerAlgorithmMatrix:
    """The registry's second axis composes with the first: every
    packet scheduler must carry a finite transfer on scenario A under
    every congestion-control spec with a packet layer — the same
    matrix the CI smoke lane runs via ``repro algorithms --check``."""

    def test_every_scheduler_cc_pair_completes(self):
        checks = scheduler_smoke_check(size_packets=40, horizon=30.0)
        failed = [(c.scheduler, c.algorithm, c.detail)
                  for c in checks if c.status == "FAIL"]
        assert not failed, failed
        completed = {(c.scheduler, c.algorithm)
                     for c in checks if c.status == "ok"}
        packet_algos = {
            spec.name for spec in algorithm_specs()
            if spec.supports("packet")
            and not spec.required_params("packet")}
        expected = {(sched.name, algo)
                    for sched in scheduler_specs()
                    for algo in packet_algos}
        assert completed == expected

    def test_matrix_covers_every_registered_scheduler(self):
        checks = scheduler_smoke_check(size_packets=40, horizon=30.0)
        seen = {c.scheduler for c in checks}
        assert seen == {spec.name for spec in scheduler_specs()}


class TestDesignSpectrum:
    """BALIA sits between LIA and OLIA on scenario A, in every layer
    that is deterministic enough to rank (the design claim of
    Peng-Walid-Hwang-Low: responsiveness/friendliness between the
    linked-increase and best-path-only extremes)."""

    def test_balia_type2_between_lia_and_olia_at_equilibrium(self):
        _, lia = _equilibrium("lia")
        _, balia = _equilibrium("balia")
        _, olia = _equilibrium("olia")
        assert lia < balia < olia

    def test_balia_shared_path_share_between_olia_and_lia(self):
        lia_t1, _ = _equilibrium("lia")
        balia_t1, _ = _equilibrium("balia")
        olia_t1, _ = _equilibrium("olia")
        assert olia_t1[1] < balia_t1[1] < lia_t1[1]

    def test_every_tri_layer_algorithm_reported_suppression_or_not(self):
        """All three layers agree on the *qualitative* P1 story: LIA
        suppresses type2 below 0.8, OLIA keeps it above 0.8."""
        for layer in (_equilibrium, _fluid_tail, _packet_steady_state):
            assert layer("lia")[1] < 0.87
            assert layer("olia")[1] > 0.8
