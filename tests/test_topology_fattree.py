"""Tests for the FatTree topology builder."""

import random

import pytest

from repro.sim import Simulator
from repro.topology import FatTree


class TestDimensions:
    def test_k4_counts(self):
        tree = FatTree(Simulator(), k=4)
        assert tree.n_hosts == 16
        assert tree.n_core == 4
        assert tree.n_pods == 4

    def test_k8_matches_paper(self):
        """Paper: 'a FatTree with 128 hosts, 80 eight-port switches'."""
        tree = FatTree(Simulator(), k=8)
        assert tree.n_hosts == 128
        n_switches = tree.n_pods * tree.half * 2 + tree.n_core
        assert n_switches == 80

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FatTree(Simulator(), k=3)
        with pytest.raises(ValueError):
            FatTree(Simulator(), k=0)

    def test_describe(self):
        text = FatTree(Simulator(), k=4).describe()
        assert "16 hosts" in text and "20 switches" in text


class TestCoordinates:
    def test_pod_and_edge_of(self):
        tree = FatTree(Simulator(), k=4)
        # Pod 0 hosts: 0..3, edges: hosts 0,1 -> edge 0; hosts 2,3 -> edge 1.
        assert tree.pod_of(0) == 0
        assert tree.pod_of(3) == 0
        assert tree.pod_of(4) == 1
        assert tree.edge_of(0) == 0
        assert tree.edge_of(2) == 1
        assert tree.edge_of(5) == 0


class TestPaths:
    def test_path_counts(self):
        tree = FatTree(Simulator(), k=4)
        assert tree.n_paths(0, 4) == 4     # inter-pod: (k/2)^2 cores
        assert tree.n_paths(0, 2) == 2     # intra-pod: k/2 aggs
        assert tree.n_paths(0, 1) == 1     # same edge

    def test_interpod_path_structure(self):
        tree = FatTree(Simulator(), k=4)
        path = tree.path(0, 4, choice=0)
        assert len(path) == 6
        assert path[0] is tree.host_up[0]
        assert path[-1] is tree.host_down[4]

    def test_intrapod_path_structure(self):
        tree = FatTree(Simulator(), k=4)
        path = tree.path(0, 2, choice=1)
        assert len(path) == 4

    def test_same_edge_path(self):
        tree = FatTree(Simulator(), k=4)
        path = tree.path(0, 1)
        assert len(path) == 2
        assert path == (tree.host_up[0], tree.host_down[1])

    def test_distinct_cores_for_interpod_choices(self):
        tree = FatTree(Simulator(), k=4)
        core_hops = {tree.path(0, 4, c)[2] for c in range(4)}
        assert len(core_hops) == 4

    def test_choice_out_of_range(self):
        tree = FatTree(Simulator(), k=4)
        with pytest.raises(ValueError):
            tree.path(0, 4, choice=4)
        with pytest.raises(ValueError):
            tree.path(0, 0)

    def test_paths_are_connected(self):
        """Consecutive path links belong to the right layer ordering."""
        tree = FatTree(Simulator(), k=8)
        rng = random.Random(1)
        for _ in range(50):
            src = rng.randrange(tree.n_hosts)
            dst = rng.randrange(tree.n_hosts)
            if src == dst:
                continue
            for choice in range(min(tree.n_paths(src, dst), 3)):
                path = tree.path(src, dst, choice)
                assert path[0] is tree.host_up[src]
                assert path[-1] is tree.host_down[dst]
                assert len(path) in (2, 4, 6)


class TestSubflowPlacement:
    def test_distinct_paths_no_duplicates(self):
        tree = FatTree(Simulator(), k=8)
        rng = random.Random(2)
        specs = tree.distinct_paths(0, 64, 8, rng)
        assert len(specs) == 8
        middles = {spec.links[2] for spec in specs}
        assert len(middles) == 8  # eight distinct cores

    def test_more_subflows_than_paths(self):
        tree = FatTree(Simulator(), k=4)
        rng = random.Random(2)
        specs = tree.distinct_paths(0, 2, 4, rng)  # only 2 distinct paths
        assert len(specs) == 4

    def test_reverse_delay_matches_hops(self):
        tree = FatTree(Simulator(), k=4, link_delay=1e-4)
        spec = tree.path_spec(0, 4, 0)
        assert spec.reverse_delay == pytest.approx(6e-4)


class TestTrafficAndCapacity:
    def test_permutation_has_no_fixed_points(self):
        tree = FatTree(Simulator(), k=4)
        perm = tree.random_permutation(random.Random(3))
        assert sorted(perm) == list(range(16))
        assert all(perm[i] != i for i in range(16))

    def test_oversubscription_slows_fabric_only(self):
        tree = FatTree(Simulator(), k=4, link_mbps=10.0,
                       oversubscription=4.0)
        assert tree.host_up[0].rate_bps == pytest.approx(10e6)
        assert tree.edge_to_agg[0][0][0].rate_bps == pytest.approx(2.5e6)
        assert tree.agg_to_core[0][0][0].rate_bps == pytest.approx(2.5e6)

    def test_invalid_oversubscription(self):
        with pytest.raises(ValueError):
            FatTree(Simulator(), k=4, oversubscription=0.5)

    def test_core_links_count(self):
        tree = FatTree(Simulator(), k=4)
        # agg->core: 4 pods * 2 aggs * 2 ports = 16; core->agg: 4*4 = 16.
        assert len(tree.core_links()) == 32
