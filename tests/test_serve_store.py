"""Tests for the persistent result store (repro.serve.store)."""

import multiprocessing
import os
import pickle

import pytest

from repro.serve.store import MISSING, ResultStore


def _value(i):
    return {"rates": [float(i), float(i) + 0.5], "converged": True}


class TestBasics:
    def test_get_put_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("k1") is MISSING
        assert store.put("k1", _value(1))
        assert store.get("k1") == _value(1)

    def test_default_on_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("absent", default=None) is None

    def test_persists_across_store_objects(self, tmp_path):
        ResultStore(tmp_path).put("k1", _value(1))
        fresh = ResultStore(tmp_path)
        assert fresh.get("k1") == _value(1)
        assert fresh.stats.disk_hits == 1

    def test_memory_front_avoids_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", _value(1))
        os.unlink(store.path_for("k1"))       # disk gone, memory serves
        assert store.get("k1") == _value(1)
        assert store.stats.memory_hits == 1

    def test_memory_zero_reads_disk_every_time(self, tmp_path):
        store = ResultStore(tmp_path, memory_entries=0)
        store.put("k1", _value(1))
        assert store.get("k1") == _value(1)
        assert store.stats.memory_hits == 0
        assert store.stats.disk_hits == 1

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ResultStore(tmp_path, memory_entries=-1)

    def test_stats_dict_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", _value(1))
        store.get("k1")
        store.get("absent")
        stats = store.stats.as_dict()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert set(stats) >= {"writes", "evictions", "corrupt",
                              "disk_hits", "memory_hits"}


class TestCorruptEntries:
    def test_truncated_entry_is_a_miss_and_deleted(self, tmp_path):
        store = ResultStore(tmp_path, memory_entries=0)
        store.put("k1", _value(1))
        path = store.path_for("k1")
        path.write_bytes(path.read_bytes()[:-4])
        assert store.get("k1") is MISSING
        assert store.stats.corrupt == 1
        assert not path.exists()       # recompute lands a clean entry
        assert store.put("k1", _value(1))
        assert store.get("k1") == _value(1)

    def test_garbage_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path, memory_entries=0)
        store.path_for("k1").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("k1").write_bytes(b"definitely not a pickle")
        assert store.get("k1") is MISSING
        assert store.stats.corrupt == 1


class TestEviction:
    def test_lru_bound_holds_on_disk(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=4, memory_entries=0)
        for i in range(10):
            store.put(f"k{i}", _value(i))
        assert len(list(tmp_path.glob("*.pkl"))) <= 4
        assert store.stats.evictions >= 6

    def test_eviction_drops_oldest_mtime_first(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2, memory_entries=0)
        for i in range(3):
            store.put(f"k{i}", _value(i))
            # Distinct mtimes even on coarse-grained filesystems.
            aged = 1_000_000 + i
            os.utime(store.path_for(f"k{i}"), (aged, aged))
        store.put("k3", _value(3))
        remaining = {p.stem for p in tmp_path.glob("*.pkl")}
        assert "k0" not in remaining
        assert "k3" in remaining

    def test_memory_lru_bound_holds(self, tmp_path):
        store = ResultStore(tmp_path, memory_entries=2)
        for i in range(5):
            store.put(f"k{i}", _value(i))
        assert len(store._memory) == 2
        assert list(store._memory) == ["k3", "k4"]

    def test_no_bound_never_evicts(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(20):
            store.put(f"k{i}", _value(i))
        assert len(list(tmp_path.glob("*.pkl"))) == 20
        assert store.stats.evictions == 0


def _race_writer(directory, worker, n_keys, out_queue):
    """Hammer the same key set from one process; report what was read."""
    store = ResultStore(directory, memory_entries=0)
    bad = 0
    for round_ in range(12):
        for i in range(n_keys):
            key = f"shared{i}"
            store.put(key, _value(i))
            value = store.get(key, MISSING)
            # Concurrent writers only ever write _value(i) under this
            # key, so a reader must see exactly that or (transiently,
            # never on POSIX) a miss — a torn/mixed entry is the bug
            # the atomic rename exists to prevent.
            if value is not MISSING and value != _value(i):
                bad += 1
    out_queue.put((worker, bad))


class TestConcurrency:
    def test_multiprocess_writers_race_same_keys(self, tmp_path):
        ctx = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        queue = ctx.Queue()
        workers = [
            ctx.Process(target=_race_writer,
                        args=(str(tmp_path), w, 8, queue))
            for w in range(4)]
        for proc in workers:
            proc.start()
        reports = [queue.get(timeout=60) for _ in workers]
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert all(bad == 0 for _, bad in reports), reports
        # Every surviving entry is complete and correct.
        store = ResultStore(tmp_path, memory_entries=0)
        for i in range(8):
            assert store.get(f"shared{i}") == _value(i)
        assert store.stats.corrupt == 0

    def test_reader_never_sees_tmpfiles_as_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", _value(1))
        # A stray in-progress temporary must not count as an entry.
        (tmp_path / "someone-else.tmp").write_bytes(b"partial")
        bounded = ResultStore(tmp_path, max_entries=5, memory_entries=0)
        bounded.put("k2", _value(2))
        assert bounded.get("k1") == _value(1)
        assert bounded.get("k2") == _value(2)


class TestSweepInterop:
    def test_sweep_cache_and_serve_store_share_entries(self, tmp_path):
        """SweepRunner reads/writes through ResultStore: an entry put
        by either side is visible to the other under the same key."""
        store = ResultStore(tmp_path, memory_entries=0)
        payload = {"answer": 42}
        key = "deadbeef" * 8
        assert store.put(key, payload)
        raw = pickle.loads(store.path_for(key).read_bytes())
        assert raw == payload
