"""End-to-end tests: STCP and CUBIC controllers inside the packet TCP.

Remark 3 of the paper points to these RTT-insensitive protocols as the
way to fully escape problems P1/P2; here we verify they integrate with
the transport layer and show their characteristic behaviours.
"""

from repro.core import CubicController, ScalableTcpController
from repro.sim import DropTailQueue, Link, Simulator, TcpSubflow


def bottleneck(sim, mbps=5.0, delay=0.02, limit=100):
    return Link(sim, rate_bps=mbps * 1e6, delay=delay,
                queue=DropTailQueue(limit=limit), name="bn")


class TestStcpEndToEnd:
    def test_bulk_flow_fills_link(self):
        sim = Simulator()
        link = bottleneck(sim)
        flow = TcpSubflow(sim, (link,), 0.02, ScalableTcpController(),
                          key=0)
        flow.start(0.0)
        sim.run(until=30.0)
        goodput = flow.acked_packets / 30.0
        assert goodput > 0.6 * 5e6 / 12000

    def test_gentler_backoff_than_reno(self):
        """STCP halves by 12.5%, so its window stays higher after loss."""
        sim = Simulator()
        link = bottleneck(sim, limit=30)
        flow = TcpSubflow(sim, (link,), 0.02, ScalableTcpController(),
                          key=0)
        flow.start(0.0)
        sim.run(until=30.0)
        assert flow.retransmits > 0
        # After losses the STCP window hovers near the queue ceiling.
        assert flow.cwnd > 10.0


class TestCubicEndToEnd:
    def test_bulk_flow_with_sim_clock(self):
        sim = Simulator()
        link = bottleneck(sim)
        controller = CubicController(clock=lambda: sim.now)
        flow = TcpSubflow(sim, (link,), 0.02, controller, key=0)
        flow.start(0.0)
        sim.run(until=30.0)
        goodput = flow.acked_packets / 30.0
        assert goodput > 0.5 * 5e6 / 12000

    def test_epoch_resets_on_loss(self):
        sim = Simulator()
        link = bottleneck(sim, limit=20)
        controller = CubicController(clock=lambda: sim.now)
        flow = TcpSubflow(sim, (link,), 0.02, controller, key=0)
        flow.start(0.0)
        sim.run(until=20.0)
        assert flow.retransmits > 0
        # A loss epoch was recorded during the run.
        assert controller._epoch[0] > 0.0

    def test_two_rtt_classes_share_more_evenly_than_reno(self):
        """CUBIC's time-based growth narrows the RTT-unfairness gap.

        Two flows share a bottleneck; one has 4x the RTT.  Under Reno
        the short-RTT flow dominates ~quadratically; under CUBIC the
        ratio should be materially smaller.
        """
        def share_ratio(make_controller):
            sim = Simulator()
            link = bottleneck(sim, mbps=5.0, delay=0.01, limit=100)
            fast = TcpSubflow(sim, (link,), 0.01, make_controller(sim),
                              key=0)
            # The long-RTT path: extra reverse delay, same bottleneck.
            slow = TcpSubflow(sim, (link,), 0.07, make_controller(sim),
                              key=0)
            fast.start(0.0)
            slow.start(0.0)
            sim.run(until=60.0)
            return fast.acked_packets / max(slow.acked_packets, 1)

        from repro.core import RenoController
        reno_ratio = share_ratio(lambda sim: RenoController())
        cubic_ratio = share_ratio(
            lambda sim: CubicController(clock=lambda: sim.now))
        assert cubic_ratio < reno_ratio
