"""The SMT verification layer's registry surface — no z3 required.

Everything here must pass *without* the optional z3-solver extra: the
fourth registry layer is listable, constructible and parameter-checked
with z3 absent, `run_verification` degrades to skip results (never
failures), and the CLI verbs exit cleanly.  The actual claim
certification lives in ``test_verify_claims.py`` behind a z3 gate.
"""

import pytest

import repro.cli as cli
from repro.core import registry
from repro.experiments.algorithms import (
    layer_support_table,
    smoke_check,
)
from repro.verify import (
    Z3_AVAILABLE,
    ConstraintModel,
    VerificationResult,
    Z3Unavailable,
    require_z3,
    run_verification,
    format_results,
    format_witness,
)
from repro.verify.claims import CLAIM_NAMES

#: The built-in algorithms that declare the smt layer.
SMT_ALGOS = ("tcp", "lia", "olia", "balia")


# ---------------------------------------------------------------------------
# registry surface
# ---------------------------------------------------------------------------

def test_layers_tuple_includes_smt():
    assert registry.LAYERS == ("packet", "fluid", "equilibrium", "smt")


@pytest.mark.parametrize("name", SMT_ALGOS)
def test_builtin_specs_declare_smt(name):
    spec = registry.get_spec(name)
    assert spec.has_smt
    assert spec.supports("smt")


def test_smt_capable_algorithm_listing():
    names = registry.available_algorithms("smt")
    for name in SMT_ALGOS:
        assert name in names
    assert "ewtcp" not in names
    assert "cubic" not in names


def test_make_smt_model_builds_without_z3():
    # Construction must not touch z3 — only building constraints does.
    model = registry.make_smt_model("lia")
    assert isinstance(model, ConstraintModel)
    assert model.name == "lia"
    olia = registry.make_smt_model("olia", tie_tolerance=1e-5, floor=0.5)
    assert olia.tie_tolerance == pytest.approx(1e-5)
    assert olia.floor == pytest.approx(0.5)
    balia = registry.make_smt_model("balia", tie_tolerance=1e-7)
    assert balia.tie_tolerance == pytest.approx(1e-7)


def test_make_smt_model_validates_params_and_capability():
    with pytest.raises(TypeError):
        registry.make_smt_model("lia", bogus=1)
    with pytest.raises(KeyError):
        registry.make_smt_model("ewtcp")   # no smt layer declared
    with pytest.raises(KeyError):
        registry.make_smt_model("no-such-algorithm")


def test_model_claim_expectations_cover_known_claims():
    for name in SMT_ALGOS:
        model = registry.make_smt_model(name)
        assert model.claim_expectations, name
        for claim, verdict in model.claim_expectations.items():
            assert claim in CLAIM_NAMES
            assert verdict in ("sat", "unsat")
    # The paper's headline claim: LIA (and BALIA) admit non-pareto
    # equilibria, OLIA does not.
    assert registry.make_smt_model("lia").claim_expectations[
        "non-pareto"] == "sat"
    assert registry.make_smt_model("balia").claim_expectations[
        "non-pareto"] == "sat"
    assert registry.make_smt_model("olia").claim_expectations[
        "non-pareto"] == "unsat"


def test_require_z3_contract():
    if Z3_AVAILABLE:
        assert require_z3() is not None
    else:
        with pytest.raises(Z3Unavailable):
            require_z3()


def test_constraint_model_without_z3_raises_on_build():
    if Z3_AVAILABLE:
        pytest.skip("z3 installed; the degraded path is unreachable")
    model = registry.make_smt_model("lia")
    with pytest.raises(Z3Unavailable):
        model.fixed_point_constraints([], [])


# ---------------------------------------------------------------------------
# run_verification degradation + result semantics
# ---------------------------------------------------------------------------

def test_run_verification_skips_not_fails_without_z3():
    if Z3_AVAILABLE:
        pytest.skip("z3 installed; covered by test_verify_claims")
    results = run_verification()
    assert results
    assert all(r.status == "skip" for r in results)
    assert all(r.ok for r in results)
    # Every declared (algorithm, claim) pair is present.
    pairs = {(r.algorithm, r.claim) for r in results}
    assert ("lia", "non-pareto") in pairs
    assert ("balia", "uniqueness") in pairs


def test_run_verification_rejects_unknown_claim():
    with pytest.raises(ValueError):
        run_verification(claims=["no-such-claim"])


def test_run_verification_rejects_unknown_algorithm():
    with pytest.raises(KeyError):
        run_verification(algorithms=["no-such-algorithm"])


def test_run_verification_skip_for_smt_less_algorithm():
    results = run_verification(algorithms=["ewtcp"])
    assert results
    assert all(r.status == "skip" for r in results)
    assert any("smt" in r.detail for r in results)


def test_verification_result_ok_semantics():
    ok = VerificationResult("c", "a", "certified")
    skip = VerificationResult("c", "a", "skip")
    bad = VerificationResult("c", "a", "refuted")
    unknown = VerificationResult("c", "a", "unknown")
    assert ok.ok and skip.ok
    assert not bad.ok and not unknown.ok


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------

def test_format_results_and_witness():
    witness = {
        "capacity_link1": 100.0, "capacity_link2": 200.0,
        "loss_link1": 0.01, "loss_link2": 0.02,
        "rtt_multipath": 0.1, "rtt_tcp": 0.1,
        "eq_private": 50.0, "eq_shared": 50.0, "eq_tcp": 150.0,
        "alt_private": 100.0, "alt_shared": 0.0, "alt_tcp": 200.0,
    }
    results = [
        VerificationResult("non-pareto", "lia", "certified",
                           detail="sat as expected", witness=witness,
                           elapsed=0.25),
        VerificationResult("uniqueness", "olia", "skip",
                           detail="z3 missing"),
        VerificationResult("cwnd-bounds", "balia", "refuted",
                           detail="counterexample"),
    ]
    text = format_results(results)
    assert "algorithm" in text and "claim" in text
    assert "PASS" in text and "FAIL" in text and "skip" in text
    assert "1 certified, 1 refuted, 0 unknown, 1 skipped" in text
    assert "topology:" in text          # witness grouped sections
    assert "dominating allocation" in text
    flat = format_witness({"w0": 2.0, "w1": 3.0})
    assert "w0 = 2" in flat and "w1 = 3" in flat
    assert format_witness({}) == ""
    assert format_results([]) == "no (algorithm, claim) pairs selected"


def test_format_results_header_alignment():
    # Regression: column widths must account for the header labels when
    # every row value is shorter than them.
    text = format_results(
        [VerificationResult("c", "a", "certified")], show_witnesses=False)
    header, rule, row = text.splitlines()[:3]
    assert header.index("status") == row.index("PASS")


# ---------------------------------------------------------------------------
# CLI verify verb
# ---------------------------------------------------------------------------

def test_cli_verify_exits_zero_without_z3(capsys):
    if Z3_AVAILABLE:
        pytest.skip("z3 installed; exit codes covered by the z3 suite")
    assert cli.main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "skipped" in out
    assert "z3" in out


def test_cli_verify_unknown_claim_exits_two(capsys):
    assert cli.main(["verify", "--claim", "bogus"]) == 2
    assert "bogus" in capsys.readouterr().err


def test_cli_verify_unknown_algorithm_exits_two(capsys):
    assert cli.main(["verify", "--algorithm", "bogus"]) == 2
    assert "bogus" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the algorithms verb: smt column + robust smoke matrix
# ---------------------------------------------------------------------------

def test_layer_support_table_has_smt_column():
    text = str(layer_support_table())
    assert "smt" in text
    assert "balia" in text


def test_smoke_check_covers_all_layers_per_spec():
    checks = smoke_check(specs=[registry.get_spec("lia")])
    cells = {c.layer: c for c in checks}
    assert set(cells) == set(registry.LAYERS)
    smt = cells["smt"]
    if Z3_AVAILABLE:
        assert smt.status == "ok"
    else:
        assert smt.status == "skip"
        assert "z3" in smt.detail


def test_smoke_check_reports_unresolvable_capability():
    # Satellite (d) regression: a declared capability whose factory
    # blows up with a bare KeyError must become a named FAIL cell, not
    # an exception out of the matrix.
    def broken_factory(**params):
        raise KeyError("unbound helper")

    spec = registry.AlgorithmSpec(
        name="brokenspec", description="factory that cannot build",
        allocation_factory=broken_factory)
    with registry.registered(spec):
        checks = smoke_check(specs=[spec])
    cells = {c.layer: c for c in checks}
    eq = cells["equilibrium"]
    assert eq.status == "FAIL"
    assert "does not resolve" in eq.detail
    assert "KeyError" in eq.detail
    # Layers it never declared stay skips.
    assert cells["packet"].status == "skip"
    assert cells["smt"].status == "skip"


def test_cli_algorithms_check_exits_nonzero_on_failure(capsys):
    # End-to-end satellite (d): `repro algorithms --check` must exit 1
    # and name the failing (spec, layer) cell on stderr.
    def broken_factory(**params):
        raise KeyError("unbound helper")

    spec = registry.AlgorithmSpec(
        name="brokencli", description="factory that cannot build",
        allocation_factory=broken_factory)
    with registry.registered(spec):
        code = cli.main(["algorithms", "--check"])
    captured = capsys.readouterr()
    assert code == 1
    assert "brokencli/equilibrium" in captured.err
    assert "does not resolve" in captured.err
