"""Unit tests for link loss models."""

import numpy as np
import pytest

from repro.fluid.loss import (
    PowerLoss,
    RedLoss,
    SharpLoss,
    equilibrium_rate_for_tcp,
)


class TestPowerLoss:
    def test_zero_below_zero(self):
        loss = PowerLoss(capacity=100.0)
        assert loss(0.0) == 0.0
        assert loss(-5.0) == 0.0

    def test_value_at_capacity(self):
        loss = PowerLoss(capacity=100.0, p_at_capacity=0.02)
        assert loss(100.0) == pytest.approx(0.02)

    def test_monotone_increasing(self):
        loss = PowerLoss(capacity=100.0)
        rates = np.linspace(0, 500, 200)
        values = [loss(r) for r in rates]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_saturates_at_one(self):
        loss = PowerLoss(capacity=10.0, p_at_capacity=0.1, exponent=2.0)
        assert loss(1e6) == 1.0

    def test_cost_matches_numeric_integral(self):
        loss = PowerLoss(capacity=50.0, p_at_capacity=0.05, exponent=3.0)
        ys = np.linspace(0, 120, 6000)
        numeric = np.trapezoid([loss(y) for y in ys], ys)
        assert loss.cost(120.0) == pytest.approx(numeric, rel=1e-3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PowerLoss(capacity=0.0)
        with pytest.raises(ValueError):
            PowerLoss(capacity=1.0, p_at_capacity=0.0)
        with pytest.raises(ValueError):
            PowerLoss(capacity=1.0, exponent=-1.0)


class TestSharpLoss:
    def test_negligible_below_capacity(self):
        loss = SharpLoss(capacity=100.0)
        assert loss(80.0) < 2e-3

    def test_steep_above_capacity(self):
        loss = SharpLoss(capacity=100.0)
        assert loss(130.0) > 10 * loss(100.0)


class TestRedLoss:
    def test_piecewise_shape(self):
        loss = RedLoss(capacity=100.0, p_max=0.1, low=0.9, high=1.5)
        assert loss(80.0) == 0.0
        assert loss(95.0) == pytest.approx(0.05)
        assert loss(100.0) == pytest.approx(0.1)
        assert loss(125.0) == pytest.approx(0.1 + 0.9 * 0.5)
        assert loss(200.0) == 1.0

    def test_continuity_at_breakpoints(self):
        loss = RedLoss(capacity=100.0)
        for point in (loss.low_rate, loss.capacity, loss.high_rate):
            assert loss(point - 1e-9) == pytest.approx(loss(point + 1e-9),
                                                       abs=1e-6)

    def test_cost_matches_numeric_integral(self):
        loss = RedLoss(capacity=100.0)
        for upper in (50.0, 95.0, 120.0, 200.0):
            ys = np.linspace(0, upper, 8000)
            numeric = np.trapezoid([loss(y) for y in ys], ys)
            assert loss.cost(upper) == pytest.approx(numeric, rel=2e-3,
                                                     abs=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RedLoss(capacity=-1.0)
        with pytest.raises(ValueError):
            RedLoss(capacity=1.0, p_max=1.5)
        with pytest.raises(ValueError):
            RedLoss(capacity=1.0, low=1.2)


class TestTcpEquilibriumHelper:
    def test_single_flow_consistency(self):
        """The bisection rate satisfies x = sqrt(2/p(x))/rtt."""
        loss = PowerLoss(capacity=100.0, p_at_capacity=0.02, exponent=4.0)
        rtt = 0.1
        y = equilibrium_rate_for_tcp(loss, rtt)
        assert y == pytest.approx((2.0 / loss(y)) ** 0.5 / rtt, rel=1e-4)

    def test_more_flows_drive_higher_loss(self):
        loss = PowerLoss(capacity=100.0)
        y1 = equilibrium_rate_for_tcp(loss, 0.1, n_flows=1)
        y5 = equilibrium_rate_for_tcp(loss, 0.1, n_flows=5)
        assert y5 > y1
        assert loss(y5) > loss(y1)
