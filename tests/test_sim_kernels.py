"""Property tests for the compiled DES kernels (optional extension).

The C kernels must be *invisible*: HeapKernel/WheelKernel pop in the
pure schedulers' exact ``(time, seq)`` order under any interleaving,
and EngineCore — including through forced heap<->wheel migrations —
dispatches the same trace as the pure-python engine.  The whole module
skips when the extension is not built (the pure-fallback CI lane).
"""

import random

import pytest

_kernels = pytest.importorskip("repro.sim._kernels")

from repro.sim.engine import Simulator
from repro.sim.scheduler import HeapScheduler, WheelScheduler


def _entry(time, seq):
    return (time, seq, None, (), None)


def _random_interleaving(schedulers, seed, n_ops=5000):
    """Drive all schedulers through one random push/pop stream,
    asserting pop-for-pop equality, and drain them at the end."""
    rng = random.Random(seed)
    now, seq = 0.0, 0
    for _ in range(n_ops):
        if rng.random() < 0.55:
            horizon = rng.choice([1e-4, 5e-3, 0.3, 2.0, 80.0, 2e4, 1e7])
            time = now + rng.random() * horizon
            seq += 1
            for sched in schedulers:
                sched.push(_entry(time, seq))
        elif rng.random() < 0.5:
            until = now + rng.random() * 0.5
            popped = [sched.pop_due(until) for sched in schedulers]
            assert all(p == popped[0] for p in popped)
            if popped[0] is not None:
                now = popped[0][0]
        else:
            popped = [sched.pop_next() for sched in schedulers]
            assert all(p == popped[0] for p in popped)
            if popped[0] is not None:
                now = popped[0][0]
    while True:
        popped = [sched.pop_next() for sched in schedulers]
        assert all(p == popped[0] for p in popped)
        if popped[0] is None:
            break
    for sched in schedulers:
        assert len(sched) == 0


class TestKernelPopOrder:
    @pytest.mark.parametrize("seed", range(5))
    def test_compiled_kernels_match_pure_schedulers(self, seed):
        _random_interleaving(
            [HeapScheduler(), WheelScheduler(tick=1e-3),
             _kernels.HeapKernel(), _kernels.WheelKernel(tick=1e-3)],
            seed)

    def test_dump_refill_round_trip_across_implementations(self):
        wheel = _kernels.WheelKernel(tick=1e-3)
        entries = [_entry(t, i) for i, t in
                   enumerate([0.5, 0.0001, 3.0, 90.0, 1e5, 0.5])]
        for entry in entries:
            wheel.push(entry)
        heap = _kernels.HeapKernel()
        heap.refill(wheel.dump())
        assert len(wheel) == 0 and wheel.pop_next() is None
        popped = [heap.pop_next() for _ in range(len(entries))]
        assert popped == sorted(entries, key=lambda e: (e[0], e[1]))

    def test_wheel_tick_validation(self):
        with pytest.raises(ValueError, match="tick"):
            _kernels.WheelKernel(tick=0.0)


class TestEngineCoreContract:
    def test_threshold_and_period_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            _kernels.EngineCore("auto", promote=16, demote=16)
        with pytest.raises(ValueError, match="period"):
            _kernels.EngineCore("auto", period=0)
        with pytest.raises(ValueError, match="tick"):
            _kernels.EngineCore("wheel", tick=0.0)

    def test_error_messages_match_the_pure_engine(self):
        core = _kernels.EngineCore("heap")
        with pytest.raises(ValueError) as excinfo:
            core.schedule(-1.0, print)
        assert str(excinfo.value) == \
            "cannot schedule in the past (delay=-1.0)"
        core.run(until=5.0)
        with pytest.raises(ValueError) as excinfo:
            core.schedule_at(1.0, print)
        assert str(excinfo.value) == \
            "cannot schedule at 1.0 before now (5.0)"

    def test_budget_guard_message(self):
        core = _kernels.EngineCore("auto")

        def forever():
            core.schedule(1.0, forever)

        core.schedule(0.0, forever)
        with pytest.raises(RuntimeError,
                           match="run_until_empty exceeded 100 events"):
            core.run_until_empty(max_events=100)


def _run_random_workload(schedule, now, seed, log, n_roots=250):
    """Self-expanding random event tree, identical for any engine."""
    rng = random.Random(seed)

    def fire(tag, depth):
        log.append((now(), tag, depth))
        if depth < 3:
            for child in range(rng.randint(0, 2)):
                schedule(rng.random() * rng.choice([1e-3, 0.1, 5.0]),
                         fire, f"{tag}.{child}", depth + 1)

    for i in range(n_roots):
        schedule(rng.random() * 10.0, fire, f"root{i}", 0)


class TestEngineCoreTraceIdentity:
    @pytest.mark.parametrize("backend", ["heap", "wheel", "auto"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_compiled_engine_matches_pure_engine(self, backend, seed):
        pure_log, pure_trace = [], []
        sim = Simulator(backend, compiled=False,
                        trace=lambda t, fn, args: pure_trace.append(
                            (t, len(args))))
        _run_random_workload(sim.schedule, lambda: sim.now, seed,
                             pure_log)
        sim.run(until=8.0)
        sim.run_until_empty()

        core_log, core_trace = [], []
        core = _kernels.EngineCore(
            backend, trace=lambda t, fn, args: core_trace.append(
                (t, len(args))))
        _run_random_workload(core.schedule, lambda: core.now, seed,
                             core_log)
        core.run(until=8.0)
        core.run_until_empty()

        assert pure_log == core_log
        assert pure_trace == core_trace
        assert sim.events_processed == core.events_processed
        assert sim.now == core.now

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_forced_migrations_keep_the_trace(self, seed):
        """The compiled auto engine with thresholds tuned to migrate
        constantly still dispatches the pure heap engine's trace —
        migration is unobservable, as for the pure AdaptiveScheduler.
        """
        pure_log = []
        sim = Simulator("heap", compiled=False)
        _run_random_workload(sim.schedule, lambda: sim.now, seed,
                             pure_log)
        sim.run_until_empty()

        core_log = []
        core = _kernels.EngineCore("auto", promote=48, demote=12,
                                   period=4)
        _run_random_workload(core.schedule, lambda: core.now, seed,
                             core_log)
        core.run_until_empty()

        assert pure_log == core_log
        # The thresholds above really forced crossings — otherwise
        # this proves nothing about migration.
        assert core.migrations >= 2
        assert sim.events_processed == core.events_processed

    def test_cancelled_events_are_skipped_and_recycled(self):
        core = _kernels.EngineCore("heap")
        log = []
        event = core.schedule(1.0, log.append, "no")
        keep = core.schedule(2.0, log.append, "yes")
        event.cancel()
        core.run(until=3.0)
        assert log == ["yes"]
        assert core.events_processed == 1
        assert keep.fn is None      # dispatched handles are stripped
