"""Tests for background traffic, RTT heterogeneity, and calibration."""

import random

import pytest

from repro.experiments import calibration, rtt_heterogeneity
from repro.sim import (
    BackgroundTraffic,
    DropTailQueue,
    Link,
    Simulator,
    single_path_tcp,
)


def make_link(sim, mbps=1.0):
    return Link(sim, rate_bps=mbps * 1e6, delay=0.04,
                queue=DropTailQueue(limit=100), name="bn")


class TestBackgroundTraffic:
    def test_cbr_rate_accurate(self):
        sim = Simulator()
        link = make_link(sim, mbps=10.0)
        bg = BackgroundTraffic(sim, (link,), rate_pps=100.0,
                               poisson=False)
        bg.start(0.0)
        sim.run(until=10.0)
        assert bg.packets_sent == pytest.approx(1000, abs=2)
        assert bg.delivery_ratio > 0.99

    def test_poisson_rate_statistical(self):
        sim = Simulator()
        link = make_link(sim, mbps=10.0)
        bg = BackgroundTraffic(sim, (link,), rate_pps=200.0,
                               rng=random.Random(3))
        bg.start(0.0)
        sim.run(until=10.0)
        assert bg.packets_sent == pytest.approx(2000, rel=0.1)

    def test_background_steals_tcp_throughput(self):
        """A TCP flow sharing with unresponsive traffic gets less."""
        def tcp_goodput(bg_pps):
            sim = Simulator()
            link = make_link(sim, mbps=1.0)
            flow = single_path_tcp(sim, (link,), 0.04)
            flow.start(0.0)
            if bg_pps:
                bg = BackgroundTraffic(sim, (link,), rate_pps=bg_pps,
                                       rng=random.Random(1))
                bg.start(0.0)
            sim.run(until=40.0)
            return flow.acked_packets / 40.0

        clean = tcp_goodput(0)
        loaded = tcp_goodput(40.0)  # ~half the link
        assert loaded < 0.75 * clean

    def test_stop_halts_emission(self):
        sim = Simulator()
        link = make_link(sim)
        bg = BackgroundTraffic(sim, (link,), rate_pps=100.0,
                               poisson=False)
        bg.start(0.0)
        sim.run(until=1.0)
        bg.stop()
        sent = bg.packets_sent
        sim.run(until=2.0)
        assert bg.packets_sent == sent

    def test_validation(self):
        sim = Simulator()
        link = make_link(sim)
        with pytest.raises(ValueError):
            BackgroundTraffic(sim, (), rate_pps=1.0, poisson=False)
        with pytest.raises(ValueError):
            BackgroundTraffic(sim, (link,), rate_pps=0.0, poisson=False)
        with pytest.raises(ValueError):
            BackgroundTraffic(sim, (link,), rate_pps=1.0)  # needs rng

    def test_olia_beats_lia_with_background_noise(self):
        """Scenario-C-like setup plus unresponsive noise on the shared
        AP: the OLIA > LIA ordering survives (paper future-work factor)."""
        from repro.topology.scenarios import build_scenario_c
        from repro.sim.apps import BulkTransfer
        from repro.experiments.runner import measure

        def run(algorithm):
            sim = Simulator()
            rng = random.Random(5)
            topo = build_scenario_c(sim, rng, n1=10, n2=10, c1_mbps=1.0,
                                    c2_mbps=1.0)
            flows = {}
            for i in range(10):
                bulk = BulkTransfer(sim, algorithm, topo.multipath_paths,
                                    start_time=rng.uniform(0, 1),
                                    name=f"mp.{i}")
                bulk.start()
                flows[f"mp.{i}"] = bulk
            for i in range(10):
                bulk = BulkTransfer(sim, "tcp", [topo.singlepath_path],
                                    start_time=rng.uniform(0, 1),
                                    name=f"sp.{i}")
                bulk.start()
                flows[f"sp.{i}"] = bulk
            noise = BackgroundTraffic(sim, topo.singlepath_path.links,
                                      rate_pps=80.0, rng=rng)
            noise.start(0.0)
            result = measure(sim, flows, [topo.ap1, topo.ap2],
                             warmup=8.0, duration=12.0)
            return result.group_mean("sp")

        assert run("olia") > run("lia")


class TestRttHeterogeneity:
    def test_best_path_crossover(self):
        table = rtt_heterogeneity.best_path_criterion_table(
            p1=0.005, p2=0.02, rtt_ratios=(0.5, 1.0, 2.0, 4.0))
        best = table.column("best path")
        # Crossover at sqrt(p2/p1) = 2: path1 wins below, loses above.
        assert best[0] == "path1"
        assert best[1] == "path1"
        assert best[3] == "path2"

    def test_low_rtt_path_users_squeezed(self):
        """Remark 3: a short-RTT path attracts the TCP-compatible
        multipath user, hurting that path's TCP users."""
        table = rtt_heterogeneity.rtt_sweep_table(
            algorithm="olia", rtt_ratios=(0.25, 1.0, 4.0))
        tcp_ap1 = table.column("tcp@AP1 rate")
        assert tcp_ap1[0] < tcp_ap1[1] < tcp_ap1[2]

    def test_mp_traffic_follows_low_rtt(self):
        table = rtt_heterogeneity.rtt_sweep_table(
            algorithm="olia", rtt_ratios=(0.25, 1.0, 4.0))
        ap1 = table.column("mp rate on AP1")
        ap2 = table.column("mp rate on AP2")
        assert ap1[0] > ap1[1] > ap1[2]   # decreasing in rtt1
        assert ap2[2] > ap2[0]            # shifts to AP2 at high rtt1

    def test_equal_rtts_split_evenly(self):
        table = rtt_heterogeneity.rtt_sweep_table(
            algorithm="olia", rtt_ratios=(1.0,))
        ap1 = table.column("mp rate on AP1")[0]
        ap2 = table.column("mp rate on AP2")[0]
        assert ap1 == pytest.approx(ap2, rel=0.2)

    def test_batch_backend_matches_loop_bitwise(self):
        ratios = (0.25, 0.5, 1.0, 2.0)
        loop = rtt_heterogeneity.rtt_sweep_table(
            algorithm="olia", rtt_ratios=ratios, backend="loop")
        batch = rtt_heterogeneity.rtt_sweep_table(
            algorithm="olia", rtt_ratios=ratios, backend="batch")
        assert [tuple(r) for r in batch.rows] == \
            [tuple(r) for r in loop.rows]

    def test_batch_backend_composes_with_shard_and_cache(self, tmp_path):
        """--backend batch --shard I/N --resume DIR must honour shard
        ownership and fill the shared cache like the loop backend."""
        ratios = (0.25, 0.5, 1.0, 2.0)
        for index in range(2):
            rtt_heterogeneity.rtt_sweep_table(
                algorithm="olia", rtt_ratios=ratios, backend="batch",
                cache_dir=tmp_path, shard=(index, 2))
        merged = rtt_heterogeneity.rtt_sweep_table(
            algorithm="olia", rtt_ratios=ratios, backend="loop",
            cache_dir=tmp_path)
        direct = rtt_heterogeneity.rtt_sweep_table(
            algorithm="olia", rtt_ratios=ratios, backend="loop")
        assert [tuple(r) for r in merged.rows] == \
            [tuple(r) for r in direct.rows]

    def test_batch_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="backend"):
            rtt_heterogeneity.rtt_sweep_table(backend="gpu")


class TestCalibration:
    def test_formula_validation_ratios_near_one(self):
        table = calibration.formula_validation_table(
            capacities_mbps=(2.0,), flow_counts=(2,),
            duration=30.0, warmup=10.0)
        ratios = table.column("ratio")
        assert all(0.6 < r < 1.6 for r in ratios)

    def test_more_flows_higher_loss(self):
        table = calibration.formula_validation_table(
            capacities_mbps=(2.0,), flow_counts=(2, 5),
            duration=20.0, warmup=10.0)
        losses = table.column("measured p")
        assert losses[1] > losses[0]
