"""Behavioural tests for MPTCP with coupled controllers (Figs. 6-8)."""

import random

import pytest

from repro.core import OliaController
from repro.sim import (
    Link,
    MptcpConnection,
    PathSpec,
    REDQueue,
    Simulator,
    WindowTracer,
    single_path_tcp,
)
from repro.units import mbps_to_pps


def two_bottleneck_setup(n_tcp_path1=5, n_tcp_path2=5, mbps=1.0, seed=1):
    """Fig. 6: a two-path MPTCP user, each path shared with TCP flows."""
    sim = Simulator()
    rng = random.Random(seed)
    links = []
    for name in ("bn1", "bn2"):
        queue = REDQueue.for_capacity_mbps(rng, mbps)
        links.append(Link(sim, rate_bps=mbps * 1e6, delay=0.04,
                          queue=queue, name=name))
    tcp_flows = []
    for i in range(n_tcp_path1):
        flow = single_path_tcp(sim, (links[0],), 0.04, name=f"t1.{i}")
        flow.start(i * 0.1)
        tcp_flows.append(flow)
    for i in range(n_tcp_path2):
        flow = single_path_tcp(sim, (links[1],), 0.04, name=f"t2.{i}")
        flow.start(i * 0.1)
        tcp_flows.append(flow)
    return sim, links, tcp_flows


class TestConstruction:
    def test_needs_paths(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MptcpConnection(sim, "olia", [])

    def test_accepts_controller_instance(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e6, delay=0.01)
        controller = OliaController()
        conn = MptcpConnection(sim, controller,
                               [PathSpec((link,), 0.01)])
        assert conn.controller is controller

    def test_multipath_subflows_use_1mss_ssthresh(self):
        """Paper Section IV-B: ssthresh floor of 1 MSS for multipath."""
        sim = Simulator()
        l1 = Link(sim, rate_bps=1e6, delay=0.01)
        l2 = Link(sim, rate_bps=1e6, delay=0.01)
        conn = MptcpConnection(sim, "olia", [PathSpec((l1,), 0.01),
                                             PathSpec((l2,), 0.01)])
        assert all(sf.min_ssthresh == 1.0 for sf in conn.subflows)

    def test_single_path_keeps_tcp_ssthresh(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e6, delay=0.01)
        conn = MptcpConnection(sim, "olia", [PathSpec((link,), 0.01)])
        assert conn.subflows[0].min_ssthresh == 2.0

    def test_pathspec_validation(self):
        with pytest.raises(ValueError):
            PathSpec((), 0.01)
        with pytest.raises(ValueError):
            PathSpec((object(),), -1.0)


class TestSymmetricScenario:
    def test_olia_uses_both_paths(self):
        """Fig. 7: equal paths -> both windows well above the minimum.

        At 3 Mbps shared with 5 TCP flows, a fair per-path MPTCP share is
        ~21 pkt/s, i.e. a window of ~3.4 packets at ~160 ms RTT.
        """
        sim, links, _ = two_bottleneck_setup(5, 5, mbps=3.0)
        conn = MptcpConnection(
            sim, "olia",
            [PathSpec((links[0],), 0.04), PathSpec((links[1],), 0.04)])
        tracer = WindowTracer(sim, conn, period=0.2)
        conn.start(1.0)
        tracer.start()
        sim.run(until=60.0)
        w1, w2 = tracer.mean_windows(skip_fraction=0.3)
        assert w1 > 2.0 and w2 > 2.0
        assert 0.4 < w1 / w2 < 2.5

    def test_lia_uses_both_paths(self):
        sim, links, _ = two_bottleneck_setup(5, 5, mbps=3.0)
        conn = MptcpConnection(
            sim, "lia",
            [PathSpec((links[0],), 0.04), PathSpec((links[1],), 0.04)])
        tracer = WindowTracer(sim, conn, period=0.2)
        conn.start(1.0)
        tracer.start()
        sim.run(until=60.0)
        w1, w2 = tracer.mean_windows(skip_fraction=0.3)
        assert w1 > 2.0 and w2 > 2.0

    def test_alpha_sums_to_zero_throughout(self):
        sim, links, _ = two_bottleneck_setup(5, 5)
        conn = MptcpConnection(
            sim, "olia",
            [PathSpec((links[0],), 0.04), PathSpec((links[1],), 0.04)])
        tracer = WindowTracer(sim, conn, period=0.5)
        conn.start(1.0)
        tracer.start()
        sim.run(until=30.0)
        for alphas in tracer.alphas:
            assert sum(alphas) == pytest.approx(0.0, abs=1e-12)


class TestAsymmetricScenario:
    def test_olia_avoids_congested_path(self):
        """Fig. 8: path 2 shared with 10 TCP flows -> OLIA's window there
        stays near the minimum while the good path carries the traffic."""
        sim, links, _ = two_bottleneck_setup(5, 10, mbps=3.0)
        conn = MptcpConnection(
            sim, "olia",
            [PathSpec((links[0],), 0.04), PathSpec((links[1],), 0.04)])
        tracer = WindowTracer(sim, conn, period=0.2)
        conn.start(1.0)
        tracer.start()
        sim.run(until=90.0)
        w_good, w_bad = tracer.mean_windows(skip_fraction=0.3)
        assert w_bad < 3.0
        assert w_good > 1.5 * w_bad

    def test_lia_sends_more_than_olia_on_congested_path(self):
        """Fig. 8(b): LIA keeps significant traffic on the bad path."""
        def run(algorithm):
            sim, links, _ = two_bottleneck_setup(5, 10, seed=3)
            conn = MptcpConnection(
                sim, algorithm,
                [PathSpec((links[0],), 0.04), PathSpec((links[1],), 0.04)])
            tracer = WindowTracer(sim, conn, period=0.2)
            conn.start(1.0)
            tracer.start()
            sim.run(until=90.0)
            return tracer.mean_windows(skip_fraction=0.3)

        _, lia_bad = run("lia")
        _, olia_bad = run("olia")
        assert lia_bad > olia_bad

    def test_goodput_positive_and_bounded(self):
        sim, links, _ = two_bottleneck_setup(5, 10)
        conn = MptcpConnection(
            sim, "olia",
            [PathSpec((links[0],), 0.04), PathSpec((links[1],), 0.04)])
        conn.start(1.0)
        sim.run(until=60.0)
        goodput = conn.acked_packets / 59.0
        assert goodput > 0
        assert goodput < 2 * mbps_to_pps(2.0)
