"""Tests for the million-query load harness (repro.serve.loadgen)."""

import json

import pytest

from repro.serve.loadgen import (
    GeneratorConfig,
    LoadGenConfig,
    _build_pools,
    _equilibrium_mix,
    _latency_query,
    _phase_rng,
    _random_query,
    format_report,
    run_loadgen,
    write_report,
)


def _tiny_config(**overrides):
    """A config small enough for a unit test (~seconds, not minutes)."""
    base = dict(
        queries=120,
        latency_queries=16,
        concurrency=8,
        hot_set=4,
        cold_pool=24,
        baseline_samples=4,
        max_batch=16,
        generator=GeneratorConfig(n_flows=8, n_links=4),
    )
    base.update(overrides)
    return LoadGenConfig(**base)


class TestQueryGeneration:
    def test_phase_rng_is_deterministic(self):
        config = _tiny_config()
        a = _phase_rng(config, "cold", 7)
        b = _phase_rng(config, "cold", 7)
        assert a.random() == b.random()

    def test_phase_rng_varies_by_phase_and_index(self):
        config = _tiny_config()
        assert _phase_rng(config, "cold", 7).random() \
            != _phase_rng(config, "warm", 7).random()
        assert _phase_rng(config, "cold", 7).random() \
            != _phase_rng(config, "cold", 8).random()

    def test_random_query_reproducible(self):
        config = _tiny_config()
        q1 = _random_query(_phase_rng(config, "x", 3), config,
                           ["olia"], [1.0], n_tcp=2)
        q2 = _random_query(_phase_rng(config, "x", 3), config,
                           ["olia"], [1.0], n_tcp=2)
        assert q1 == q2
        assert q1.content_hash() == q2.content_hash()

    def test_latency_query_reproducible_and_distinct(self):
        config = _tiny_config()
        q1 = _latency_query(config, ["olia"], [1.0], 5)
        q2 = _latency_query(config, ["olia"], [1.0], 5)
        q3 = _latency_query(config, ["olia"], [1.0], 6)
        assert q1.content_hash() == q2.content_hash()
        assert q1.content_hash() != q3.content_hash()

    def test_build_pools_sizes_and_determinism(self):
        config = _tiny_config()
        names = [n for n, _ in config.generator.algorithm_mix]
        weights = [w for _, w in config.generator.algorithm_mix]
        hot1, pool1 = _build_pools(config, names, weights)
        hot2, pool2 = _build_pools(config, names, weights)
        assert len(hot1) == config.hot_set
        assert len(pool1) == config.cold_pool
        assert [q.content_hash() for q in hot1] \
            == [q.content_hash() for q in hot2]
        assert [q.content_hash() for q in pool1] \
            == [q.content_hash() for q in pool2]

    def test_equilibrium_mix_covers_registered_algorithms(self):
        names, weights = _equilibrium_mix(
            [("lia", 0.5), ("olia", 0.3), ("wvegas", 0.2)])
        assert set(names) == {"lia", "olia", "wvegas"}
        assert all(w > 0 for w in weights)

    def test_equilibrium_mix_rejects_unknown_algorithm(self):
        with pytest.raises(KeyError):
            _equilibrium_mix([("not-an-algorithm", 1.0)])


class TestSmokeMode:
    def test_smoke_caps_every_size_knob(self):
        full = LoadGenConfig()
        smoke = full.smoke()
        assert smoke.queries < full.queries
        assert smoke.latency_queries < full.latency_queries
        assert smoke.concurrency <= full.concurrency
        assert smoke.hot_set <= full.hot_set
        assert smoke.cold_pool < full.cold_pool


class TestRunLoadgen:
    def test_report_shape_and_invariants(self, tmp_path):
        report = run_loadgen(_tiny_config())
        assert report["benchmark"] == "serve"
        assert set(report) >= {"config", "sequential_baseline", "cold",
                               "warm", "replay", "store",
                               "bitwise_equal"}
        assert report["bitwise_equal"] is True
        assert report["sequential_baseline"]["qps"] > 0
        for phase in ("cold", "warm", "replay"):
            stats = report[phase]
            assert stats["qps"] > 0
            assert stats["p50_ms"] > 0
            assert stats["p50_ms"] <= stats["p99_ms"]
        # The warm phase replays the cold latency set against the now
        # populated store: every query must be a hit.
        assert report["warm"]["hit_rate"] == 1.0
        assert report["warm"]["p50_improvement"] > 1.0
        # The replay phase mixes hot-set repeats with pool queries, so
        # the store serves most but not necessarily all of them.
        assert 0.0 < report["replay"]["hit_rate"] <= 1.0
        # Formatting and writing must accept the real report.
        text = format_report(report)
        assert "cold" in text and "replay" in text
        out = tmp_path / "BENCH_serve.json"
        write_report(report, out)
        assert json.loads(out.read_text())["benchmark"] == "serve"

    def test_reports_are_deterministic_in_structure(self):
        a = run_loadgen(_tiny_config())
        b = run_loadgen(_tiny_config())
        # Timings differ run to run; the workload must not.
        assert a["config"] == b["config"]
        assert a["cold"]["queries"] == b["cold"]["queries"]
        assert a["replay"]["service"]["admitted"] \
            == b["replay"]["service"]["admitted"]

        # Whether a repeated query lands as a store hit or an in-flight
        # dedup hit is a race against the batching window; only their
        # sum (queries answered without a fresh solve) is deterministic.
        def served_without_solving(report):
            dedup = sum(report[phase]["service"]["dedup_hits"]
                        for phase in ("cold", "replay"))
            return report["store"]["hits"] + dedup

        assert served_without_solving(a) == served_without_solving(b)
