"""Tests for the scenario A closed forms (Fig. 1, Appendix A)."""

import pytest

from repro.analysis import scenario_a
from repro.units import mbps_to_pps


def paper_setting(n1=10, c1_mbps=1.0):
    """The testbed setting of Section III-A: N2=10, C2=1 Mbps, RTT 150 ms."""
    return dict(n1=n1, n2=10, c1=mbps_to_pps(c1_mbps), c2=mbps_to_pps(1.0),
                rtt=0.15)


class TestLiaFixedPoint:
    def test_eq10_satisfied(self):
        res = scenario_a.lia_fixed_point(**paper_setting())
        z = (res.p1 / res.p2) ** 0.5
        lhs = z + (res.n1 / res.n2) * z * z / (1.0 + 2.0 * z * z)
        assert lhs == pytest.approx(res.c2 / res.c1, rel=1e-9)

    def test_capacity_constraints_hold(self):
        res = scenario_a.lia_fixed_point(**paper_setting(n1=20))
        # Server: x1 + x2 = C1; shared AP: N1 x2 + N2 y = N2 C2.
        assert res.x1 + res.x2 == pytest.approx(res.c1, rel=1e-9)
        assert res.n1 * res.x2 + res.n2 * res.y == pytest.approx(
            res.n2 * res.c2, rel=1e-9)

    def test_type1_normalized_always_one(self):
        for n1 in (10, 20, 30):
            res = scenario_a.lia_fixed_point(**paper_setting(n1=n1))
            assert res.type1_normalized == pytest.approx(1.0)

    def test_type2_degrades_with_more_type1_users(self):
        """Problem P1: type2 throughput decreases as N1 grows."""
        values = [scenario_a.lia_fixed_point(
            **paper_setting(n1=n1)).type2_normalized
            for n1 in (10, 20, 30)]
        assert values[0] > values[1] > values[2]

    def test_paper_magnitude_30_percent_drop_at_equal_users(self):
        """Paper: 'For N1=N2, type2 users see a decrease of about 30%'."""
        res = scenario_a.lia_fixed_point(**paper_setting(n1=10))
        assert res.type2_normalized == pytest.approx(0.7, abs=0.08)

    def test_paper_magnitude_50_60_percent_drop_at_triple_users(self):
        """Paper: 'When N1=3N2, this decrease is between 50% to 60%'."""
        res = scenario_a.lia_fixed_point(**paper_setting(n1=30))
        assert 0.40 <= res.type2_normalized <= 0.50

    def test_depends_only_on_ratios(self):
        a = scenario_a.lia_fixed_point(n1=10, n2=10, c1=100.0, c2=100.0,
                                       rtt=0.15)
        b = scenario_a.lia_fixed_point(n1=30, n2=30, c1=400.0, c2=400.0,
                                       rtt=0.15)
        assert a.type2_normalized == pytest.approx(b.type2_normalized)

    def test_congestion_grows_on_shared_ap(self):
        """Fig. 1(c): p2 increases with N1/N2."""
        p2s = [scenario_a.lia_fixed_point(**paper_setting(n1=n1)).p2
               for n1 in (10, 20, 30)]
        assert p2s[0] < p2s[1] < p2s[2]

    def test_p1_depends_only_on_c1(self):
        res1 = scenario_a.lia_fixed_point(**paper_setting(n1=10))
        res2 = scenario_a.lia_fixed_point(**paper_setting(n1=30))
        assert res1.p1 == pytest.approx(res2.p1)

    def test_paper_p1_values(self):
        """Paper: p1 ~= 0.02, 0.009, 0.004 for C1 = 0.75, 1, 1.5 Mbps.

        These are measured testbed numbers at RTT ~= 150 ms; the formula
        p1 = 2/(C1*rtt)^2 should land in the same range.
        """
        for c1_mbps, p1_expected in ((0.75, 0.02), (1.0, 0.009),
                                     (1.5, 0.004)):
            res = scenario_a.lia_fixed_point(**paper_setting(
                c1_mbps=c1_mbps))
            assert res.p1 == pytest.approx(p1_expected, rel=0.45)


class TestOptimumWithProbing:
    def test_probe_traffic_is_one_packet_per_rtt(self):
        res = scenario_a.optimum_with_probing(**paper_setting())
        assert res.x2 == pytest.approx(1.0 / 0.15)

    def test_type2_loses_only_probing_share(self):
        res = scenario_a.optimum_with_probing(**paper_setting(n1=30))
        expected_y = res.c2 - 3.0 * (1.0 / 0.15)
        assert res.y == pytest.approx(expected_y)

    def test_beats_lia_for_type2(self):
        for n1 in (10, 20, 30):
            lia = scenario_a.lia_fixed_point(**paper_setting(n1=n1))
            opt = scenario_a.optimum_with_probing(**paper_setting(n1=n1))
            assert opt.type2_normalized > lia.type2_normalized

    def test_probing_saturation_detected(self):
        with pytest.raises(ValueError):
            scenario_a.optimum_with_probing(n1=100, n2=1, c1=10.0, c2=10.0,
                                            rtt=0.15)

    def test_olia_prediction_matches_optimum(self):
        olia = scenario_a.olia_prediction(**paper_setting(n1=20))
        opt = scenario_a.optimum_with_probing(**paper_setting(n1=20))
        assert olia.y == pytest.approx(opt.y)
        assert olia.p2 == pytest.approx(opt.p2)

    def test_olia_congestion_far_below_lia(self):
        """Fig. 10: OLIA's p2 stays low while LIA's grows ~5x."""
        lia = scenario_a.lia_fixed_point(**paper_setting(n1=30))
        olia = scenario_a.olia_prediction(**paper_setting(n1=30))
        assert olia.p2 < 0.5 * lia.p2


class TestValidation:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            scenario_a.lia_fixed_point(n1=0, n2=10, c1=1.0, c2=1.0, rtt=0.1)
        with pytest.raises(ValueError):
            scenario_a.lia_fixed_point(n1=1, n2=1, c1=-1.0, c2=1.0, rtt=0.1)
        with pytest.raises(ValueError):
            scenario_a.lia_fixed_point(n1=1, n2=1, c1=1.0, c2=1.0, rtt=0.0)
