"""Property test: wheel, heap and auto runs of a full DES scenario are
trace-identical.

The scheduler contract (``repro.sim.scheduler``) is that the timer
wheel — and the adaptive backend, through any of its migrations — pops
entries in exactly the heap's ``(time, seq)`` order, which makes
*whole simulations* backend-independent: same event sequence, same RNG
draws, same floats everywhere.  This test runs the paper's scenario A
— MPTCP bulk transfers through a shared AP competing with regular TCP,
RED queues, staggered random starts — under every backend across seeds
and requires

* the dispatched event traces to be identical (time, callback, and
  argument shape of every single event), and
* the measured figure statistics (goodputs, loss probabilities,
  utilizations) to be exactly equal, not approximately.
"""

import random

import pytest

from repro.experiments.runner import measure, staggered_starts
from repro.sim import BulkTransfer, Simulator
from repro.sim.scheduler import COMPILED_AVAILABLE
from repro.topology.scenarios import build_scenario_a


def _run_scenario_a(backend: str, seed: int, trace: list,
                    compiled=None):
    """One scenario-A run on the given backend, recording its trace."""
    def hook(time, fn, args):
        trace.append((time, getattr(fn, "__qualname__", repr(fn)),
                      len(args)))

    sim = Simulator(backend, trace=hook, compiled=compiled)
    rng = random.Random(seed)
    topo = build_scenario_a(sim, rng, n1=2, n2=2, c1_mbps=1.0,
                            c2_mbps=1.0)
    flows = {}
    starts = staggered_starts(rng, 4)
    for i in range(2):
        bulk = BulkTransfer(sim, "olia", topo.type1_paths,
                            start_time=starts[i], name=f"type1.{i}")
        bulk.start()
        flows[f"type1.{i}"] = bulk
    for i in range(2):
        bulk = BulkTransfer(sim, "tcp", [topo.type2_path],
                            start_time=starts[2 + i], name=f"type2.{i}")
        bulk.start()
        flows[f"type2.{i}"] = bulk
    result = measure(sim, flows, [topo.server_link, topo.shared_ap],
                     warmup=2.0, duration=6.0)
    return sim, result


@pytest.mark.parametrize("backend", ["wheel", "auto"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_scenario_a_trace_identical_across_backends(seed, backend):
    heap_trace, other_trace = [], []
    heap_sim, heap_result = _run_scenario_a("heap", seed, heap_trace)
    other_sim, other_result = _run_scenario_a(backend, seed, other_trace)

    # The runs did real work (thousands of events), on both backends.
    assert heap_sim.events_processed > 1000
    assert heap_sim.events_processed == other_sim.events_processed

    # Event order is identical, entry by entry.
    assert len(heap_trace) == len(other_trace)
    for heap_entry, other_entry in zip(heap_trace, other_trace):
        assert heap_entry == other_entry

    # Final monitor statistics are *exactly* equal — same floats.
    assert heap_result.goodput_pps == other_result.goodput_pps
    assert heap_result.link_loss == other_result.link_loss
    assert heap_result.link_utilization == other_result.link_utilization


def test_scenario_a_traces_differ_across_seeds():
    """Sanity: the equality above is not vacuous — different seeds give
    different traces, so identical traces really mean determinism."""
    trace_a, trace_b = [], []
    _run_scenario_a("wheel", 1, trace_a)
    _run_scenario_a("wheel", 2, trace_b)
    assert trace_a != trace_b


@pytest.mark.skipif(not COMPILED_AVAILABLE,
                    reason="compiled kernels not built")
@pytest.mark.parametrize("backend", ["heap", "wheel", "auto"])
@pytest.mark.parametrize("seed", [1, 2])
def test_scenario_a_compiled_engine_matches_pure(seed, backend):
    """The compiled EngineCore is trace-identical to the pure loop on
    the full scenario-A workload — every backend, entry by entry."""
    pure_trace, compiled_trace = [], []
    pure_sim, pure_result = _run_scenario_a(backend, seed, pure_trace,
                                            compiled=False)
    comp_sim, comp_result = _run_scenario_a(backend, seed,
                                            compiled_trace,
                                            compiled=True)

    assert not pure_sim.compiled and comp_sim.compiled
    assert pure_sim.events_processed > 1000
    assert pure_sim.events_processed == comp_sim.events_processed
    assert pure_trace == compiled_trace
    assert pure_result.goodput_pps == comp_result.goodput_pps
    assert pure_result.link_loss == comp_result.link_loss
    assert pure_result.link_utilization == comp_result.link_utilization
