"""Unit tests for the cross-layer algorithm registry."""

import pytest

from repro.core import (
    LiaController,
    OliaController,
    RenoController,
    available_algorithms,
    make_controller,
    register_algorithm,
)
from repro.core.registry import (
    LAYERS,
    AlgorithmSpec,
    ParamSpec,
    algorithm_specs,
    get_spec,
    make_allocation_rule,
    make_fluid_algorithm,
    registered,
    unregister_algorithm,
)


class TestRegistry:
    def test_known_algorithms_present(self):
        names = available_algorithms()
        for expected in ("lia", "olia", "reno", "coupled", "ewtcp",
                         "balia", "cubic", "epsilon"):
            assert expected in names

    def test_make_controller_types(self):
        assert isinstance(make_controller("lia"), LiaController)
        assert isinstance(make_controller("olia"), OliaController)
        assert isinstance(make_controller("reno"), RenoController)

    def test_aliases(self):
        assert isinstance(make_controller("tcp"), RenoController)
        assert isinstance(make_controller("uncoupled"), RenoController)

    def test_case_insensitive(self):
        assert isinstance(make_controller("OLIA"), OliaController)

    def test_fresh_instance_each_call(self):
        assert make_controller("lia") is not make_controller("lia")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="olia"):
            make_controller("does-not-exist")

    def test_register_custom_and_duplicate(self):
        class Custom(RenoController):
            name = "custom-test"

        register_algorithm("custom-test", Custom)
        try:
            assert isinstance(make_controller("custom-test"), Custom)
            with pytest.raises(ValueError):
                register_algorithm("custom-test", Custom)
        finally:
            unregister_algorithm("custom-test")


class TestAlgorithmSpec:
    def test_capability_flags(self):
        lia = get_spec("lia")
        assert lia.has_packet and lia.has_fluid and lia.has_equilibrium
        assert lia.layers == LAYERS
        stcp = get_spec("stcp")
        assert stcp.layers == ("packet",)
        epsilon = get_spec("epsilon")
        assert epsilon.layers == ("equilibrium",)

    def test_alias_resolves_to_same_spec(self):
        assert get_spec("tcp") is get_spec("reno") is get_spec("UNCOUPLED")

    def test_specs_listed_once_each(self):
        specs = algorithm_specs()
        names = [spec.name for spec in specs]
        assert names == sorted(set(names))
        assert "tcp" in names and "reno" not in names   # aliases collapse

    def test_layer_filtered_names(self):
        packet = set(available_algorithms("packet"))
        fluid = set(available_algorithms("fluid"))
        equilibrium = set(available_algorithms("equilibrium"))
        assert "stcp" in packet and "stcp" not in fluid
        assert "epsilon" in equilibrium and "epsilon" not in packet
        for layer_set in (packet, fluid, equilibrium):
            assert {"lia", "olia", "balia", "tcp", "reno",
                    "uncoupled"} <= layer_set

    def test_missing_layer_raises_loud_keyerror(self):
        with pytest.raises(KeyError, match="no fluid layer"):
            make_fluid_algorithm("stcp")
        with pytest.raises(KeyError, match="no packet layer"):
            make_controller("epsilon")
        with pytest.raises(KeyError, match="no equilibrium layer"):
            make_allocation_rule("cubic")

    def test_params_flow_through_each_layer(self):
        assert make_controller("olia", tie_tolerance=0.25).tie_tolerance \
            == 0.25
        assert make_fluid_algorithm("olia",
                                    tie_tolerance=0.25).tie_tolerance \
            == 0.25
        rule = make_allocation_rule("olia", tie_tolerance=0.25)
        assert callable(rule)

    def test_per_layer_param_defaults_preserved(self):
        """Each layer keeps its historical tie_tolerance default."""
        assert make_controller("olia").tie_tolerance == 0.0
        assert make_fluid_algorithm("olia").tie_tolerance == 1e-3

    def test_undeclared_param_rejected(self):
        with pytest.raises(TypeError, match="does not accept"):
            make_controller("lia", tie_tolerance=0.1)
        with pytest.raises(TypeError, match="does not accept"):
            make_controller("olia", floor=1.0)   # equilibrium-only param

    def test_required_param_enforced(self):
        with pytest.raises(TypeError, match="epsilon"):
            make_allocation_rule("epsilon")
        with pytest.raises(TypeError, match="clock"):
            make_controller("cubic")
        rule = make_allocation_rule("epsilon", epsilon=1.0)
        assert callable(rule)

    def test_make_accepts_spec_instances(self):
        spec = get_spec("lia")
        assert isinstance(make_controller(spec), LiaController)
        assert make_fluid_algorithm(spec).name == "lia"
        assert callable(make_allocation_rule(spec))


class TestRegisterErgonomics:
    def _spec(self, name="throwaway", **kwargs):
        return AlgorithmSpec(name=name,
                             controller_factory=RenoController, **kwargs)

    def test_override_replaces_and_returns_previous(self):
        register_algorithm(self._spec())
        try:
            replaced = register_algorithm(
                self._spec(description="v2"), override=True)
            assert [spec.name for spec in replaced] == ["throwaway"]
            assert get_spec("throwaway").description == "v2"
        finally:
            unregister_algorithm("throwaway")

    def test_unregister_by_alias_removes_all_names(self):
        register_algorithm(self._spec(aliases=("tw",)))
        spec = unregister_algorithm("tw")
        assert spec.name == "throwaway"
        for name in ("throwaway", "tw"):
            with pytest.raises(KeyError):
                get_spec(name)

    def test_unregister_unknown_is_loud(self):
        with pytest.raises(KeyError, match="known"):
            unregister_algorithm("never-registered")

    def test_registered_context_manager_cleans_up(self):
        before = available_algorithms()
        with registered(self._spec()) as spec:
            assert get_spec("throwaway") is spec
        assert available_algorithms() == before
        with pytest.raises(KeyError):
            get_spec("throwaway")

    def test_registered_override_restores_builtin(self):
        original = get_spec("lia")
        custom = AlgorithmSpec(name="lia",
                               controller_factory=RenoController)
        with registered(custom, override=True):
            assert isinstance(make_controller("lia"), RenoController)
            assert not get_spec("lia").has_fluid
        assert get_spec("lia") is original
        assert isinstance(make_controller("lia"), LiaController)

    def test_registered_cleans_up_on_error(self):
        with pytest.raises(RuntimeError):
            with registered(self._spec()):
                raise RuntimeError("boom")
        with pytest.raises(KeyError):
            get_spec("throwaway")

    def test_alias_collision_without_override_rejected(self):
        with pytest.raises(ValueError, match="tcp"):
            register_algorithm(self._spec(aliases=("tcp",)))

    def test_spec_names_must_be_lowercase(self):
        with pytest.raises(ValueError):
            AlgorithmSpec(name="LIA")
        with pytest.raises(ValueError):
            AlgorithmSpec(name="x", aliases=("Y",))


class TestLegacyFactoryParity:
    """The three legacy factories expose identical name sets per
    capability and fail with the same loud known-names KeyError style
    (satellite: factory error-handling parity)."""

    def _accepted_names(self, factory, **params):
        accepted = set()
        for name in available_algorithms():
            try:
                factory(name, **params)
            except KeyError:
                continue
            except TypeError:
                # Known name whose layer needs required params (cubic's
                # clock, epsilon's epsilon): the *name* is accepted.
                accepted.add(name)
            else:
                accepted.add(name)
        return accepted

    def test_name_sets_match_capabilities(self):
        from repro.fluid.dynamics import make_fluid_algorithm as legacy_fl
        from repro.fluid.equilibrium import allocation_rule as legacy_eq
        assert self._accepted_names(make_controller) \
            == set(available_algorithms("packet"))
        assert self._accepted_names(legacy_fl) \
            == set(available_algorithms("fluid"))
        assert self._accepted_names(legacy_eq) \
            == set(available_algorithms("equilibrium"))

    def test_all_factories_case_insensitive_with_aliases(self):
        from repro.fluid.dynamics import make_fluid_algorithm as legacy_fl
        from repro.fluid.equilibrium import allocation_rule as legacy_eq
        for name in ("TCP", "Reno", "UNCOUPLED", "Lia"):
            make_controller(name)
            legacy_fl(name)
            legacy_eq(name)

    def test_all_factories_fail_with_known_names_keyerror(self):
        from repro.fluid.dynamics import make_fluid_algorithm as legacy_fl
        from repro.fluid.equilibrium import allocation_rule as legacy_eq
        for factory in (make_controller, legacy_fl, legacy_eq):
            with pytest.raises(KeyError, match="olia"):
                factory("does-not-exist")

    def test_legacy_wrappers_build_the_registry_objects(self):
        from repro.fluid.dynamics import OliaFluid
        from repro.fluid.dynamics import make_fluid_algorithm as legacy_fl
        from repro.fluid.equilibrium import allocation_rule as legacy_eq
        from repro.fluid.equilibrium import lia_allocation, tcp_allocation
        assert isinstance(legacy_fl("olia"), OliaFluid)
        assert legacy_eq("lia") is lia_allocation
        assert legacy_eq("tcp") is tcp_allocation


class TestParamSpec:
    def test_defaults_cover_all_layers(self):
        param = ParamSpec("x")
        assert param.layers == LAYERS
        assert not param.required
