"""Unit tests for the algorithm registry."""

import pytest

from repro.core import (
    LiaController,
    OliaController,
    RenoController,
    available_algorithms,
    make_controller,
    register_algorithm,
)


class TestRegistry:
    def test_known_algorithms_present(self):
        names = available_algorithms()
        for expected in ("lia", "olia", "reno", "coupled", "ewtcp"):
            assert expected in names

    def test_make_controller_types(self):
        assert isinstance(make_controller("lia"), LiaController)
        assert isinstance(make_controller("olia"), OliaController)
        assert isinstance(make_controller("reno"), RenoController)

    def test_aliases(self):
        assert isinstance(make_controller("tcp"), RenoController)
        assert isinstance(make_controller("uncoupled"), RenoController)

    def test_case_insensitive(self):
        assert isinstance(make_controller("OLIA"), OliaController)

    def test_fresh_instance_each_call(self):
        assert make_controller("lia") is not make_controller("lia")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="olia"):
            make_controller("does-not-exist")

    def test_register_custom_and_duplicate(self):
        class Custom(RenoController):
            name = "custom-test"

        register_algorithm("custom-test", Custom)
        try:
            assert isinstance(make_controller("custom-test"), Custom)
            with pytest.raises(ValueError):
                register_algorithm("custom-test", Custom)
        finally:
            from repro.core import registry
            del registry._FACTORIES["custom-test"]
