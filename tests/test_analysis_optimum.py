"""Tests for the generic proportional-fair NUM solver."""

import numpy as np
import pytest

from repro.analysis import proportional_fair
from repro.fluid import FluidNetwork, SharpLoss


def scenario_c_net(n1=4, n2=4, c1=100.0, c2=100.0, rtt=0.15):
    net = FluidNetwork()
    ap1 = net.add_link(SharpLoss(capacity=n1 * c1))
    ap2 = net.add_link(SharpLoss(capacity=n2 * c2))
    for i in range(n1):
        u = net.add_user(f"mp{i}")
        net.add_route(u, [ap1], rtt=rtt)
        net.add_route(u, [ap2], rtt=rtt)
    for i in range(n2):
        u = net.add_user(f"sp{i}")
        net.add_route(u, [ap2], rtt=rtt)
    return net


class TestProportionalFair:
    def test_single_link_equal_split(self):
        net = FluidNetwork()
        link = net.add_link(SharpLoss(capacity=90.0))
        for i in range(3):
            u = net.add_user()
            net.add_route(u, [link], rtt=0.1)
        result = proportional_fair(net, floor_packets=0.0)
        assert result.success
        assert np.allclose(result.user_totals, 30.0, rtol=1e-3)

    def test_scenario_c_multipath_keeps_off_shared_ap(self):
        """With C1 = C2, fair multipath users take only the probing floor
        on the shared AP (paper Fig. 5(b) dashed lines)."""
        net = scenario_c_net()
        result = proportional_fair(net, floor_packets=1.0)
        assert result.success
        # Multipath users' AP2 routes are the odd route ids 1,3,5,7.
        probe = 1.0 / 0.15
        for route in (1, 3, 5, 7):
            assert result.rates[route] == pytest.approx(probe, rel=0.05)

    def test_scenario_c_pooling_when_c1_small(self):
        net = scenario_c_net(c1=25.0, c2=100.0)
        result = proportional_fair(net, floor_packets=1.0)
        assert result.success
        totals = result.user_totals
        # All users end up near the pooled fair share.
        pooled = (4 * 25.0 + 4 * 100.0) / 8.0
        assert np.allclose(totals, pooled, rtol=0.05)

    def test_matches_closed_form_scenario_c(self):
        from repro.analysis import scenario_c as sc
        n1 = n2 = 4
        c1, c2, rtt = 150.0, 100.0, 0.15
        net = scenario_c_net(n1=n1, n2=n2, c1=c1, c2=c2, rtt=rtt)
        result = proportional_fair(net, floor_packets=1.0)
        closed = sc.optimum_with_probing(n1=n1, n2=n2, c1=c1, c2=c2, rtt=rtt)
        mp_total = result.user_totals[:n1].mean()
        sp_total = result.user_totals[n1:].mean()
        assert mp_total == pytest.approx(closed.x1 + closed.x2, rel=0.03)
        assert sp_total == pytest.approx(closed.y, rel=0.03)

    def test_floor_saturation_raises(self):
        net = FluidNetwork()
        link = net.add_link(SharpLoss(capacity=5.0))
        u = net.add_user()
        net.add_route(u, [link], rtt=0.1)  # floor alone = 10 > 5
        with pytest.raises(ValueError):
            proportional_fair(net, floor_packets=1.0)

    def test_rates_respect_capacities(self):
        net = scenario_c_net()
        result = proportional_fair(net, floor_packets=1.0)
        link_rates = net.link_rates(result.rates)
        for link in range(net.n_links):
            assert link_rates[link] <= net.loss_model(link).capacity * 1.01
