"""Tests for the scenario topology builders."""

import random

import pytest

from repro.sim import REDQueue, Simulator
from repro.sim.queues import DropTailQueue
from repro.topology import (
    build_scenario_a,
    build_scenario_b,
    build_scenario_c,
    build_two_path,
)


class TestScenarioA:
    def test_capacities(self):
        sim = Simulator()
        topo = build_scenario_a(sim, random.Random(1), n1=10, n2=10,
                                c1_mbps=1.0, c2_mbps=1.0)
        assert topo.server_link.rate_bps == pytest.approx(10e6)
        assert topo.shared_ap.rate_bps == pytest.approx(10e6)

    def test_paths_structure(self):
        sim = Simulator()
        topo = build_scenario_a(sim, random.Random(1), n1=10, n2=10,
                                c1_mbps=1.0, c2_mbps=1.0)
        private, via_shared = topo.type1_paths
        assert private.links == (topo.server_link,)
        assert via_shared.links == (topo.server_link, topo.shared_ap)
        assert topo.type2_path.links == (topo.shared_ap,)

    def test_all_paths_share_base_rtt(self):
        sim = Simulator()
        topo = build_scenario_a(sim, random.Random(1), n1=10, n2=10,
                                c1_mbps=1.0, c2_mbps=1.0, base_rtt=0.08)
        for spec in topo.type1_paths + [topo.type2_path]:
            forward = sum(link.delay for link in spec.links)
            assert forward + spec.reverse_delay == pytest.approx(0.08)

    def test_red_queue_default(self):
        sim = Simulator()
        topo = build_scenario_a(sim, random.Random(1), n1=10, n2=10,
                                c1_mbps=1.0, c2_mbps=1.0)
        assert isinstance(topo.shared_ap.queue, REDQueue)

    def test_droptail_option(self):
        sim = Simulator()
        topo = build_scenario_a(sim, random.Random(1), n1=10, n2=10,
                                c1_mbps=1.0, c2_mbps=1.0, queue="droptail")
        assert isinstance(topo.shared_ap.queue, DropTailQueue)
        assert not isinstance(topo.shared_ap.queue, REDQueue)

    def test_unknown_queue_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_scenario_a(sim, random.Random(1), n1=1, n2=1,
                             c1_mbps=1.0, c2_mbps=1.0, queue="fifo?")


class TestScenarioB:
    def test_paths_match_capacity_equations(self):
        """X carries {blue1, red-dashed}; T carries {blue2, red-main,
        red-dashed} — the structure behind CX=N(x1+y1), CT=N(x2+y1+y2)."""
        sim = Simulator()
        topo = build_scenario_b(sim, random.Random(1), cx_mbps=27.0,
                                ct_mbps=36.0)
        assert topo.blue_paths[0].links == (topo.link_x,)
        assert topo.blue_paths[1].links == (topo.link_t,)
        assert topo.red_main_path.links == (topo.link_t,)
        assert topo.red_dashed_path.links == (topo.link_x, topo.link_t)

    def test_capacities(self):
        sim = Simulator()
        topo = build_scenario_b(sim, random.Random(1), cx_mbps=27.0,
                                ct_mbps=36.0)
        assert topo.link_x.rate_bps == pytest.approx(27e6)
        assert topo.link_t.rate_bps == pytest.approx(36e6)


class TestScenarioC:
    def test_structure(self):
        sim = Simulator()
        topo = build_scenario_c(sim, random.Random(1), n1=10, n2=10,
                                c1_mbps=2.0, c2_mbps=1.0)
        assert topo.ap1.rate_bps == pytest.approx(20e6)
        assert topo.ap2.rate_bps == pytest.approx(10e6)
        assert topo.multipath_paths[0].links == (topo.ap1,)
        assert topo.multipath_paths[1].links == (topo.ap2,)
        assert topo.singlepath_path.links == (topo.ap2,)


class TestTwoPath:
    def test_structure(self):
        sim = Simulator()
        topo = build_two_path(sim, random.Random(1), capacity_mbps=3.0)
        assert len(topo.bottlenecks) == 2
        assert topo.mptcp_paths[0].links == (topo.bottlenecks[0],)
        assert topo.mptcp_paths[1].links == (topo.bottlenecks[1],)

    def test_base_rtt_budget(self):
        sim = Simulator()
        topo = build_two_path(sim, random.Random(1), base_rtt=0.08)
        for spec in topo.mptcp_paths + topo.tcp_paths:
            forward = sum(link.delay for link in spec.links)
            assert forward + spec.reverse_delay == pytest.approx(0.08)
