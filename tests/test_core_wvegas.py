"""wVegas across all three layers (delay-based, fully coupled)."""

import numpy as np
import pytest

from repro.core import SubflowState, make_controller
from repro.core.registry import get_spec
from repro.core.wvegas import (
    WVegasController,
    WVegasFluid,
    wvegas_allocation,
)


def _controller(windows, rtts, alpha=2.0):
    controller = WVegasController(alpha=alpha)
    for key, (w, rtt) in enumerate(zip(windows, rtts)):
        controller.register_subflow(key, SubflowState(cwnd=w, rtt=rtt))
    return controller


class TestWVegasController:
    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            WVegasController(alpha=0.0)

    def test_no_queueing_delay_probes_up(self):
        """With rtt at its base value the backlog is zero: grow."""
        wvegas = _controller([10.0], [0.1])
        assert wvegas.increase_increment(0) == pytest.approx(1.0 / 10.0)

    def test_backlog_above_twice_target_backs_off(self):
        """Inflate the RTT after the base is learned: backlog too big."""
        wvegas = _controller([10.0], [0.1])
        wvegas.increase_increment(0)          # learn baseRTT = 0.1
        wvegas.subflows[0].rtt = 0.5          # 8 packets queued
        assert wvegas.increase_increment(0) == pytest.approx(-1.0 / 10.0)

    def test_backlog_inside_band_rests(self):
        """Backlog between the share and twice the share: hold."""
        wvegas = _controller([10.0], [0.1], alpha=2.0)
        wvegas.increase_increment(0)          # baseRTT = 0.1
        # backlog = cwnd (rtt - base)/rtt = 10 * 0.03/0.13 ~ 2.3,
        # inside [alpha, 2 alpha) = [2.0, 4.0) for the single subflow.
        wvegas.subflows[0].rtt = 0.13
        assert wvegas.increase_increment(0) == 0.0

    def test_budget_split_by_rate_share(self):
        """A faster subflow owns a bigger slice of the alpha budget."""
        wvegas = _controller([10.0, 10.0], [0.05, 0.2], alpha=3.0)
        wvegas.increase_increment(0)
        wvegas.increase_increment(1)          # learn base RTTs
        # Inflate both RTTs by the same relative factor: each queues
        # the same ~1.3 packets, but subflow 0 carries 4/5 of the rate
        # so its slice of the budget (2.4) comfortably covers that,
        # while subflow 1's slice (0.6) is already overshot twice over.
        wvegas.subflows[0].rtt = 0.05 * 1.15
        wvegas.subflows[1].rtt = 0.2 * 1.15
        assert wvegas.increase_increment(0) > 0.0
        assert wvegas.increase_increment(1) < 0.0

    def test_loss_halves_like_tcp(self):
        wvegas = _controller([10.0], [0.1])
        assert wvegas.decrease_on_loss(0) == pytest.approx(5.0)

    def test_registry_constructs_it(self):
        assert isinstance(make_controller("wvegas"), WVegasController)


class TestWVegasFluid:
    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            WVegasFluid(alpha=-1.0)

    def test_derivative_sign_tracks_price_vs_budget(self):
        fluid = WVegasFluid(alpha=2.0)
        x = np.array([100.0, 100.0])
        rtt = np.array([0.1, 0.1])
        # alpha / S = 0.01: cheaper routes grow, pricier ones shrink.
        dx = fluid.derivative(x, np.array([0.001, 0.05]), rtt)
        assert dx[0] > 0.0
        assert dx[1] < 0.0

    def test_rest_point_when_price_equals_budget_rate(self):
        fluid = WVegasFluid(alpha=2.0)
        x = np.array([200.0])
        rtt = np.array([0.1])
        dx = fluid.derivative(x, np.array([2.0 / 200.0]), rtt)
        assert dx[0] == pytest.approx(0.0)

    def test_probing_floor_lifts_starved_route(self):
        """Below one packet per RTT the route relaxes up, never dies."""
        fluid = WVegasFluid(alpha=2.0)
        x = np.array([0.5, 500.0])            # floor = 1/rtt = 10
        rtt = np.array([0.1, 0.1])
        dx = fluid.derivative(x, np.array([0.9, 0.001]), rtt)
        assert dx[0] > 0.0

    def test_batch_rows_match_sequential(self):
        fluid = WVegasFluid(alpha=2.0)
        x = np.array([[100.0, 50.0], [20.0, 300.0]])
        p = np.array([[0.01, 0.02], [0.03, 0.001]])
        rtt = np.array([[0.1, 0.2], [0.15, 0.05]])
        batch = fluid.derivative(x, p, rtt)
        for k in range(2):
            row = fluid.derivative(x[k], p[k], rtt[k])
            assert np.array_equal(batch[k], row)


class TestWVegasAllocation:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            wvegas_allocation([0.01], [0.1], alpha=0.0)
        with pytest.raises(ValueError):
            wvegas_allocation([0.01], [0.1], tie_tolerance=0.0)

    def test_total_is_alpha_over_min_price(self):
        rates = wvegas_allocation([0.01, 0.5], [0.1, 0.1], alpha=2.0)
        assert np.sum(rates) == pytest.approx(2.0 / 0.01)

    def test_pricier_route_outside_band_gets_zero(self):
        rates = wvegas_allocation([0.01, 0.5], [0.1, 0.1], alpha=2.0)
        assert rates[1] == 0.0

    def test_rtt_fair_rates_ignore_rtt(self):
        a = wvegas_allocation([0.01, 0.02], [0.1, 0.1])
        b = wvegas_allocation([0.01, 0.02], [0.05, 0.3])
        assert np.array_equal(a, b)

    def test_tied_routes_share_smoothly(self):
        """Inside the band the weight decays linearly to the edge."""
        p_min = 0.01
        half_band = 0.01 * (1.0 + 0.05 / 2.0)
        rates = wvegas_allocation([p_min, half_band], [0.1, 0.1],
                                  alpha=2.0, tie_tolerance=0.05)
        assert rates[0] > rates[1] > 0.0
        assert np.sum(rates) == pytest.approx(2.0 / p_min)
        # Exactly tied prices split exactly evenly.
        even = wvegas_allocation([p_min, p_min], [0.1, 0.1], alpha=2.0)
        assert even[0] == pytest.approx(even[1])

    def test_batch_rows_match_sequential(self):
        p = np.array([[0.01, 0.011], [0.3, 0.001]])
        rtt = np.full_like(p, 0.1)
        batch = wvegas_allocation(p, rtt)
        for k in range(2):
            assert np.array_equal(batch[k], wvegas_allocation(p[k], rtt[k]))


class TestWVegasSpec:
    def test_spec_covers_all_three_layers(self):
        spec = get_spec("wvegas")
        assert spec.has_packet
        assert spec.has_fluid
        assert spec.has_equilibrium

    def test_congestion_measure_is_delay(self):
        assert get_spec("wvegas").congestion_measure == "delay"

    def test_params_declare_their_layers(self):
        spec = get_spec("wvegas")
        by_name = {p.name: p for p in spec.params}
        assert set(by_name["alpha"].layers) \
            == {"packet", "fluid", "equilibrium"}
        assert by_name["tie_tolerance"].layers == ("equilibrium",)
