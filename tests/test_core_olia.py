"""Unit tests for OLIA (Eqs. 5-6 of the paper)."""

import random

import pytest

from repro.core import OliaController, SubflowState


def make_olia(windows, rtts, interloss=None, tie_tolerance=0.0):
    ctrl = OliaController(tie_tolerance=tie_tolerance)
    interloss = interloss or [0.0] * len(windows)
    for i, (w, rtt, l) in enumerate(zip(windows, rtts, interloss)):
        state = SubflowState(cwnd=w, rtt=rtt)
        state.bytes_acked_since_loss = l
        ctrl.register_subflow(i, state)
    return ctrl


class TestArgmaxSets:
    def test_max_window_paths_unique(self):
        ctrl = make_olia([3.0, 7.0, 5.0], [0.1] * 3)
        assert ctrl.max_window_paths() == [1]

    def test_max_window_paths_tie(self):
        ctrl = make_olia([7.0, 7.0, 5.0], [0.1] * 3)
        assert sorted(ctrl.max_window_paths()) == [0, 1]

    def test_best_paths_by_interloss_over_rtt_squared(self):
        # Path 0: l/rtt^2 = 3000/0.01 = 3e5; path 1: 12000/0.16 = 7.5e4.
        ctrl = make_olia([1.0, 1.0], [0.1, 0.4], interloss=[3000.0, 12000.0])
        assert ctrl.best_paths() == [0]

    def test_best_paths_all_when_no_data_yet(self):
        """With l_p = 0 everywhere, every path ties as 'best'."""
        ctrl = make_olia([1.0, 1.0], [0.1, 0.1])
        assert sorted(ctrl.best_paths()) == [0, 1]

    def test_tie_tolerance_widens_sets(self):
        ctrl = make_olia([10.0, 9.95], [0.1, 0.1], tie_tolerance=0.01)
        assert sorted(ctrl.max_window_paths()) == [0, 1]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            OliaController(tie_tolerance=-0.1)


class TestAlphas:
    def test_all_zero_when_best_equals_max(self):
        """B \\ M empty => every alpha is 0 (Eq. 6, third case)."""
        ctrl = make_olia([9.0, 2.0], [0.1, 0.1], interloss=[15000.0, 1500.0])
        assert ctrl.best_paths() == [0]
        assert ctrl.max_window_paths() == [0]
        assert ctrl.alphas() == {0: 0.0, 1: 0.0}

    def test_transfer_from_max_to_best(self):
        """Best path with small window gains 1/|R|; max-window path loses it."""
        ctrl = make_olia([9.0, 2.0], [0.1, 0.1], interloss=[1500.0, 15000.0])
        alphas = ctrl.alphas()
        assert alphas[1] == pytest.approx(0.5)   # (1/2)/|B\M|=1
        assert alphas[0] == pytest.approx(-0.5)  # -(1/2)/|M|=1
        assert sum(alphas.values()) == pytest.approx(0.0)

    def test_three_paths_split(self):
        """alpha mass 1/|R| splits evenly across B\\M and across M."""
        ctrl = make_olia(
            [9.0, 2.0, 2.0], [0.1] * 3,
            interloss=[1500.0, 15000.0, 15000.0])
        alphas = ctrl.alphas()
        assert alphas[1] == pytest.approx((1 / 3) / 2)
        assert alphas[2] == pytest.approx((1 / 3) / 2)
        assert alphas[0] == pytest.approx(-(1 / 3) / 1)
        assert sum(alphas.values()) == pytest.approx(0.0)

    def test_path_in_both_sets_gets_negative_share(self):
        """r in M and B\\M nonempty: r pays -1/(|R||M|) (Eq. 6 second case)."""
        # Path 0 has the max window AND is tied-best with path 1,
        # but path 1 has a smaller window, so B \ M = {1}.
        ctrl = make_olia([9.0, 2.0], [0.1, 0.1],
                         interloss=[15000.0, 15000.0])
        alphas = ctrl.alphas()
        assert alphas[0] == pytest.approx(-0.5)
        assert alphas[1] == pytest.approx(0.5)

    def test_alphas_sum_zero_always(self):
        rng = random.Random(7)
        for _ in range(200):
            n = rng.randint(1, 5)
            ctrl = make_olia(
                [rng.uniform(1, 50) for _ in range(n)],
                [rng.uniform(0.01, 0.5) for _ in range(n)],
                interloss=[rng.choice([0.0, rng.uniform(0, 1e6)])
                           for _ in range(n)])
            assert sum(ctrl.alphas().values()) == pytest.approx(0.0, abs=1e-12)


class TestOliaIncrement:
    def test_single_path_reduces_to_reno(self):
        ctrl = make_olia([8.0], [0.1])
        assert ctrl.increase_increment(0) == pytest.approx(1.0 / 8.0)

    def test_kelly_voice_term_two_equal_paths(self):
        """Equal paths, B==M: increment is (w/rtt^2)/(2w/rtt)^2 = 1/(4w)."""
        ctrl = make_olia([10.0, 10.0], [0.1, 0.1],
                         interloss=[15000.0, 15000.0])
        assert ctrl.increase_increment(0) == pytest.approx(1.0 / 40.0)

    def test_alpha_accelerates_best_small_path(self):
        ctrl = make_olia([9.0, 2.0], [0.1, 0.1], interloss=[1500.0, 15000.0])
        w2 = 2.0
        kv = (w2 / 0.1**2) / (9.0 / 0.1 + w2 / 0.1) ** 2
        assert ctrl.increase_increment(1) == pytest.approx(kv + 0.5 / w2)

    def test_alpha_slows_max_window_path(self):
        ctrl = make_olia([9.0, 2.0], [0.1, 0.1], interloss=[1500.0, 15000.0])
        w1 = 9.0
        kv = (w1 / 0.1**2) / (9.0 / 0.1 + 2.0 / 0.1) ** 2
        assert ctrl.increase_increment(0) == pytest.approx(kv - 0.5 / w1)

    def test_increment_can_be_negative_but_window_floors(self):
        """A strongly penalised path can shrink, but never below 1 MSS."""
        ctrl = make_olia([1.0, 1.0], [0.1, 0.1], interloss=[0.0, 15000.0])
        # Path 0 is in M (tie) ... both in M; force path 0 only:
        ctrl.subflows[0].cwnd = 1.2
        increment = ctrl.increase_increment(0)
        assert increment < 0
        ctrl.increase_on_ack(0)
        assert ctrl.subflows[0].cwnd >= 1.0


class TestOliaBehaviour:
    def test_abandons_congested_path(self):
        """Bernoulli losses: p=0.004 vs p=0.1 -> window concentrates on path 0.

        This mirrors Fig. 8 of the paper: the congested path's window stays
        near the minimum while the good path carries the traffic.
        """
        rng = random.Random(42)
        ctrl = make_olia([2.0, 2.0], [0.1, 0.1])
        probs = {0: 0.004, 1: 0.1}
        for _ in range(30000):
            for key, p in probs.items():
                if rng.random() < p:
                    ctrl.decrease_on_loss(key)
                else:
                    ctrl.increase_on_ack(key)
        w_good = ctrl.subflows[0].cwnd
        w_bad = ctrl.subflows[1].cwnd
        assert w_good > 5.0
        assert w_bad < 3.0

    def test_uses_both_equal_paths(self):
        """Symmetric case (Fig. 7): both windows stay well above minimum."""
        rng = random.Random(1)
        ctrl = make_olia([2.0, 2.0], [0.1, 0.1])
        totals = [0.0, 0.0]
        n_rounds = 30000
        for _ in range(n_rounds):
            for key in (0, 1):
                if rng.random() < 0.01:
                    ctrl.decrease_on_loss(key)
                else:
                    ctrl.increase_on_ack(key)
                totals[key] += ctrl.subflows[key].cwnd
        mean0 = totals[0] / n_rounds
        mean1 = totals[1] / n_rounds
        assert mean0 > 2.0 and mean1 > 2.0
        assert mean0 == pytest.approx(mean1, rel=0.35)
