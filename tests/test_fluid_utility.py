"""Tests for utilities, KKT/Pareto checks (Theorems 3 and 4)."""

import numpy as np
import pytest

from repro.fluid import (
    FluidNetwork,
    PowerLoss,
    integrate,
    kkt_report,
    pareto_dominates,
    solve_fixed_point,
    taus_from_rates,
    v_star_utility,
    v_utility,
)


def scenario_net():
    """Two-link network: multipath user + one TCP competitor on link 2.

    Capacities are large enough that the 1-packet-per-RTT probing floor is
    a small fraction of the rates, keeping the KKT certificate sharp.
    """
    net = FluidNetwork()
    l1 = net.add_link(PowerLoss(capacity=800.0, p_at_capacity=0.02))
    l2 = net.add_link(PowerLoss(capacity=480.0, p_at_capacity=0.02))
    mp = net.add_user("mp")
    net.add_route(mp, [l1], rtt=0.1)
    net.add_route(mp, [l2], rtt=0.1)
    sp = net.add_user("sp")
    net.add_route(sp, [l2], rtt=0.1)
    return net


class TestTaus:
    def test_equal_rtts_give_rtt_squared(self):
        net = scenario_net()
        x = np.array([50.0, 10.0, 40.0])
        taus = taus_from_rates(net, x)
        assert np.allclose(taus, 0.01)

    def test_mixed_rtts_weighted(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(capacity=100.0))
        u = net.add_user()
        net.add_route(u, [link], rtt=0.1)
        net.add_route(u, [link], rtt=0.2)
        x = np.array([10.0, 10.0])
        tau = taus_from_rates(net, x)[0]
        expected = 20.0 / (10.0 / 0.01 + 10.0 / 0.04)
        assert tau == pytest.approx(expected)


class TestUtilities:
    def test_v_matches_v_star_for_equal_rtts(self):
        net = scenario_net()
        x = np.array([50.0, 10.0, 40.0])
        assert v_utility(net, x) == pytest.approx(v_star_utility(net, x))

    def test_v_requires_equal_rtts_per_user(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(capacity=100.0))
        u = net.add_user()
        net.add_route(u, [link], rtt=0.1)
        net.add_route(u, [link], rtt=0.3)
        with pytest.raises(ValueError):
            v_utility(net, np.array([10.0, 10.0]))

    def test_v_increases_along_olia_trajectory(self):
        """Theorem 4: dV/dt >= 0 along the (fluid) OLIA dynamics."""
        net = scenario_net()
        traj = integrate(net, {0: "olia", 1: "tcp"}, t_end=60.0, dt=2e-3,
                         floor_packets=0.0,
                         x0=np.array([5.0, 5.0, 5.0]))
        values = [v_utility(net, x) for x in traj.rates]
        # Allow tiny numerical wiggle; the trend must be monotone.
        diffs = np.diff(values)
        tol = 1e-3 * max(abs(v) for v in values)
        assert np.all(diffs >= -tol)
        assert values[-1] > values[0]


class TestKktParetoCertificate:
    def test_olia_fixed_point_is_pareto_optimal(self):
        net = scenario_net()
        result = solve_fixed_point(net, {0: "olia", 1: "tcp"},
                                   floor_packets=1.0)
        report = kkt_report(net, result.rates, tol=0.1)
        assert report.is_pareto_optimal

    def test_lia_fixed_point_fails_certificate(self):
        """Scenario-C-like congestion: LIA's allocation violates the KKT
        stationarity of V* on the congested route (it is not
        Pareto-optimal), which is exactly problem P1/P2."""
        net = FluidNetwork()
        l1 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        l2 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        mp = net.add_user()
        net.add_route(mp, [l1], rtt=0.1)
        net.add_route(mp, [l2], rtt=0.1)
        for i in range(3):
            u = net.add_user()
            net.add_route(u, [l2], rtt=0.1)
        rules = {0: "lia"}
        rules.update({u: "tcp" for u in range(1, 4)})
        result = solve_fixed_point(net, rules, floor_packets=1.0)
        report = kkt_report(net, result.rates, tol=0.1)
        assert not report.is_pareto_optimal

    def test_report_fields_consistent(self):
        net = scenario_net()
        result = solve_fixed_point(net, {0: "olia", 1: "tcp"},
                                   floor_packets=1.0)
        report = kkt_report(net, result.rates)
        assert report.residuals.shape == (net.n_routes,)
        assert report.max_violation == pytest.approx(
            float(np.max(report.residuals)))


class TestParetoDominates:
    def test_strict_improvement_dominates(self):
        net = scenario_net()
        x_old = np.array([50.0, 5.0, 40.0])
        x_new = np.array([60.0, 5.0, 40.0])
        # Rates are far below capacity, so the smooth loss model's cost
        # increase is noise; allow it via cost_rtol.
        assert pareto_dominates(net, x_new, x_old, rtol=1e-6, cost_rtol=1.0)

    def test_trade_off_does_not_dominate(self):
        net = scenario_net()
        x_old = np.array([50.0, 5.0, 40.0])
        x_new = np.array([60.0, 5.0, 30.0])  # sp loses
        assert not pareto_dominates(net, x_new, x_old)

    def test_equal_does_not_dominate(self):
        net = scenario_net()
        x = np.array([50.0, 5.0, 40.0])
        assert not pareto_dominates(net, x, x)
