"""Coverage for ``scheduler.calibrate()``'s fallback and fit paths.

The self-calibrating heap/wheel crossover has four sources —
``measured``, ``disabled``, ``noisy`` and ``unavailable`` — and all the
non-measured ones must fall back to the documented
``AUTO_PROMOTE_PENDING``/``AUTO_DEMOTE_PENDING`` constants.  Real
probes are monkeypatched out (``_steady_state_cost_ns``) so every path
here is deterministic and instant.
"""

import math

import pytest

from repro.sim import scheduler


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    """Isolate each test from the process-wide calibration cache."""
    monkeypatch.setattr(scheduler, "_calibration_cache", {})
    monkeypatch.delenv(scheduler.CALIBRATE_ENV, raising=False)


def _fake_costs(heap_intercept, heap_slope, wheel_ns):
    """A ``_steady_state_cost_ns`` stub with an exact log2 cost model."""
    def fake(factory, n_resident, **kwargs):
        if factory in (scheduler.HeapScheduler,
                       getattr(scheduler._compiled, "HeapKernel", None)):
            return heap_intercept + heap_slope * math.log2(n_resident)
        return wheel_ns
    return fake


def _assert_fallback(info):
    assert info["promote"] == scheduler.AUTO_PROMOTE_PENDING
    assert info["demote"] == scheduler.AUTO_DEMOTE_PENDING
    assert info["crossover"] is None


def test_disabled_by_environment(monkeypatch):
    monkeypatch.setenv(scheduler.CALIBRATE_ENV, "0")
    probes = []
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        lambda *a, **k: probes.append(a) or 100.0)
    info = scheduler.calibrate()
    assert info["source"] == "disabled"
    _assert_fallback(info)
    assert not probes, "disabled mode must not run timing probes"
    assert scheduler.calibrated_thresholds() == (
        scheduler.AUTO_PROMOTE_PENDING, scheduler.AUTO_DEMOTE_PENDING)


def test_disabled_check_precedes_cache(monkeypatch):
    # A measured result in the cache must not shadow a later
    # REPRO_SIM_CALIBRATE=0 — the env check runs on every call.
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        _fake_costs(50.0, 25.0, 300.0))
    assert scheduler.calibrate()["source"] == "measured"
    monkeypatch.setenv(scheduler.CALIBRATE_ENV, "0")
    info = scheduler.calibrate()
    assert info["source"] == "disabled"
    _assert_fallback(info)


def test_measured_fit_and_hysteresis_band(monkeypatch):
    # heap(n) = 50 + 25*log2(n), wheel = 300  =>  crossover at
    # log2(n*) = (300-50)/25 = 10, n* = 1024.
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        _fake_costs(50.0, 25.0, 300.0))
    info = scheduler.calibrate()
    assert info["source"] == "measured"
    assert info["crossover"] == pytest.approx(1024.0)
    assert info["promote"] == 1024
    assert info["demote"] == 1024 // 4
    assert scheduler.calibrated_thresholds() == (1024, 256)


def test_measured_result_is_cached_per_process(monkeypatch):
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        _fake_costs(50.0, 25.0, 300.0))
    first = scheduler.calibrate()

    def exploding(*args, **kwargs):
        raise AssertionError("cached calibration must not re-probe")

    monkeypatch.setattr(scheduler, "_steady_state_cost_ns", exploding)
    assert scheduler.calibrate() == first


def test_noisy_fit_flat_slope(monkeypatch):
    # Timer noise: heap cost independent of n -> slope 0 -> constants.
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        _fake_costs(100.0, 0.0, 150.0))
    info = scheduler.calibrate()
    assert info["source"] == "noisy"
    _assert_fallback(info)


def test_noisy_fit_negative_slope(monkeypatch):
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        _fake_costs(100.0, -5.0, 150.0))
    info = scheduler.calibrate()
    assert info["source"] == "noisy"
    _assert_fallback(info)


def test_crossover_clamped_below(monkeypatch):
    # Wheel cheaper than the heap everywhere -> crossover would be
    # n* < 1 -> clamp the band at CALIBRATE_MIN_PROMOTE.
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        _fake_costs(100.0, 10.0, 50.0))
    info = scheduler.calibrate()
    assert info["source"] == "measured"
    assert info["promote"] == scheduler.CALIBRATE_MIN_PROMOTE
    assert info["demote"] == scheduler.CALIBRATE_MIN_PROMOTE // 4


def test_crossover_clamped_above(monkeypatch):
    # Wheel absurdly expensive -> exponent beyond the 2^40 guard ->
    # clamp the band at CALIBRATE_MAX_PROMOTE.
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        _fake_costs(50.0, 1.0, 1e9))
    info = scheduler.calibrate()
    assert info["source"] == "measured"
    assert info["promote"] == scheduler.CALIBRATE_MAX_PROMOTE
    assert info["demote"] == scheduler.CALIBRATE_MAX_PROMOTE // 4


def test_compiled_unavailable_falls_back(monkeypatch):
    monkeypatch.setattr(scheduler, "_compiled", None)
    probes = []
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        lambda *a, **k: probes.append(a) or 100.0)
    info = scheduler.calibrate(compiled=True)
    assert info["source"] == "unavailable"
    _assert_fallback(info)
    assert not probes
    assert scheduler.calibrated_thresholds(compiled=True) == (
        scheduler.AUTO_PROMOTE_PENDING, scheduler.AUTO_DEMOTE_PENDING)


def test_pure_and_compiled_cached_separately(monkeypatch):
    if not scheduler.COMPILED_AVAILABLE:
        pytest.skip("compiled kernels not built")
    calls = []

    def fake(factory, n_resident, **kwargs):
        calls.append(factory)
        return _fake_costs(50.0, 25.0, 300.0)(factory, n_resident)

    monkeypatch.setattr(scheduler, "_steady_state_cost_ns", fake)
    scheduler.calibrate()
    n_pure = len(calls)
    scheduler.calibrate(compiled=True)
    assert len(calls) == 2 * n_pure, "compiled band needs its own probes"


def test_adaptive_scheduler_defaults_to_calibrated_band(monkeypatch):
    monkeypatch.setattr(scheduler, "_steady_state_cost_ns",
                        _fake_costs(50.0, 25.0, 300.0))
    sched = scheduler.AdaptiveScheduler()
    assert sched.promote_threshold == 1024
    assert sched.demote_threshold == 256
    # Explicit arguments still win over calibration.
    explicit = scheduler.AdaptiveScheduler(promote=4096, demote=128)
    assert explicit.promote_threshold == 4096
    assert explicit.demote_threshold == 128
