"""Tests for allocation rules, the fixed-point solver and Theorem 1."""

import numpy as np
import pytest

from repro.fluid import (
    FluidNetwork,
    PowerLoss,
    SharpLoss,
    best_path_rate,
    epsilon_family_allocation,
    lia_allocation,
    olia_allocation,
    solve_fixed_point,
    tcp_allocation,
    tcp_rate,
    verify_theorem1,
)


class TestAllocationRules:
    def test_tcp_rate_formula(self):
        assert tcp_rate(0.02, 0.1) == pytest.approx(100.0)

    def test_best_path_rate(self):
        assert best_path_rate([0.02, 0.005], [0.1, 0.1]) == pytest.approx(200.0)

    def test_lia_matches_eq2(self):
        """Windows proportional to 1/p, total = best TCP rate."""
        p = np.array([0.005, 0.02])
        rtt = np.array([0.1, 0.1])
        x = lia_allocation(p, rtt)
        assert np.sum(x) == pytest.approx(200.0)
        assert x[0] / x[1] == pytest.approx((1 / 0.005) / (1 / 0.02))

    def test_lia_single_path_is_tcp(self):
        x = lia_allocation([0.02], [0.1])
        assert x[0] == pytest.approx(tcp_rate(0.02, 0.1))

    def test_olia_concentrates_on_best(self):
        x = olia_allocation([0.005, 0.02], [0.1, 0.1])
        assert x[0] == pytest.approx(200.0)
        assert x[1] == 0.0

    def test_olia_splits_ties_equally(self):
        x = olia_allocation([0.02, 0.02], [0.1, 0.1])
        assert x[0] == pytest.approx(x[1])
        assert np.sum(x) == pytest.approx(tcp_rate(0.02, 0.1))

    def test_olia_floor_on_nonbest(self):
        x = olia_allocation([0.005, 0.02], [0.1, 0.1], floor=[0.0, 10.0])
        assert x[1] == pytest.approx(10.0)

    def test_olia_rtt_weighting(self):
        """Best path maximizes sqrt(2/p)/rtt, not just 1/p."""
        # Path 0: lower loss but much larger RTT -> path 1 wins.
        x = olia_allocation([0.005, 0.02], [1.0, 0.1])
        assert x[0] == 0.0
        assert x[1] == pytest.approx(tcp_rate(0.02, 0.1))

    def test_epsilon_one_equals_lia_for_equal_rtt(self):
        p = np.array([0.004, 0.01, 0.03])
        rtt = np.full(3, 0.15)
        assert np.allclose(epsilon_family_allocation(p, rtt, 1.0),
                           lia_allocation(p, rtt))

    def test_epsilon_zero_equals_olia(self):
        p = np.array([0.004, 0.01])
        rtt = np.full(2, 0.15)
        assert np.allclose(epsilon_family_allocation(p, rtt, 0.0),
                           olia_allocation(p, rtt))

    def test_epsilon_two_spreads_like_sqrt(self):
        p = np.array([0.01, 0.04])
        rtt = np.full(2, 0.1)
        x = epsilon_family_allocation(p, rtt, 2.0)
        assert x[0] / x[1] == pytest.approx(2.0)  # (p2/p1)**0.5

    def test_epsilon_negative_rejected(self):
        with pytest.raises(ValueError):
            epsilon_family_allocation([0.01], [0.1], -1.0)

    def test_uncoupled_allocation(self):
        x = tcp_allocation([0.02, 0.08], [0.1, 0.1])
        assert x[0] == pytest.approx(100.0)
        assert x[1] == pytest.approx(50.0)


class TestFixedPointSolver:
    def test_single_tcp_on_link(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        user = net.add_user()
        net.add_route(user, [link], rtt=0.1)
        result = solve_fixed_point(net, "tcp")
        assert result.converged
        x = result.rates[0]
        p = result.route_loss[0]
        assert x == pytest.approx(tcp_rate(p, 0.1), rel=1e-4)

    def test_matches_integrator(self):
        """The fixed point agrees with the trajectory's limit."""
        from repro.fluid import integrate
        net = FluidNetwork()
        l1 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        l2 = net.add_link(PowerLoss(capacity=60.0, p_at_capacity=0.02))
        mp = net.add_user()
        net.add_route(mp, [l1], rtt=0.1)
        net.add_route(mp, [l2], rtt=0.1)
        sp = net.add_user()
        net.add_route(sp, [l2], rtt=0.1)
        fp = solve_fixed_point(net, {0: "lia", 1: "tcp"})
        traj = integrate(net, {0: "lia", 1: "tcp"}, t_end=120.0, dt=2e-3,
                         floor_packets=0.0)
        assert fp.converged
        assert np.allclose(fp.rates, traj.tail_average(), rtol=0.08,
                           atol=1.0)

    def test_scenario_c_structure_with_olia(self):
        """OLIA multipath + TCP single-path on shared AP2 (scenario C).

        With C1 >= C2 the multipath user should abandon AP2 entirely
        (only probing traffic), matching Theorems 1/4.
        """
        net = FluidNetwork()
        ap1 = net.add_link(SharpLoss(capacity=200.0))
        ap2 = net.add_link(SharpLoss(capacity=100.0))
        mp = net.add_user("mp")
        net.add_route(mp, [ap1], rtt=0.15)
        net.add_route(mp, [ap2], rtt=0.15)
        sp = net.add_user("sp")
        net.add_route(sp, [ap2], rtt=0.15)
        result = solve_fixed_point(net, {0: "olia", 1: "tcp"},
                                   floor_packets=1.0)
        assert result.converged
        x_mp_ap2 = result.rates[1]
        assert x_mp_ap2 <= 1.0 / 0.15 * 1.01  # probing only
        checks = verify_theorem1(net, result.rates)
        assert checks["only_best_paths"]

    def test_unconverged_flagged(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(capacity=100.0))
        user = net.add_user()
        net.add_route(user, [link], rtt=0.1)
        result = solve_fixed_point(net, "tcp", max_iter=3)
        assert not result.converged
        assert result.iterations == 3


class TestVerifyTheorem1:
    def test_accepts_olia_fixed_point(self):
        net = FluidNetwork()
        l1 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        l2 = net.add_link(PowerLoss(capacity=30.0, p_at_capacity=0.02))
        mp = net.add_user()
        net.add_route(mp, [l1], rtt=0.1)
        net.add_route(mp, [l2], rtt=0.1)
        for i in range(4):
            u = net.add_user()
            net.add_route(u, [l2], rtt=0.1)
        result = solve_fixed_point(net, {0: "olia", 1: "tcp", 2: "tcp",
                                         3: "tcp", 4: "tcp"},
                                   floor_packets=1.0)
        checks = verify_theorem1(net, result.rates)
        assert checks["only_best_paths"]
        assert checks["total_is_best_tcp"]

    def test_rejects_lia_fixed_point(self):
        """LIA sends more than probing traffic on the congested path, so
        the Theorem 1 best-paths-only property must fail."""
        net = FluidNetwork()
        l1 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        l2 = net.add_link(PowerLoss(capacity=100.0, p_at_capacity=0.02))
        mp = net.add_user()
        net.add_route(mp, [l1], rtt=0.1)
        net.add_route(mp, [l2], rtt=0.1)
        for i in range(3):
            u = net.add_user()
            net.add_route(u, [l2], rtt=0.1)
        rules = {0: "lia"}
        rules.update({u: "tcp" for u in range(1, 4)})
        result = solve_fixed_point(net, rules, floor_packets=1.0)
        checks = verify_theorem1(net, result.rates)
        assert not checks["only_best_paths"]
