"""Tests for result tables and the measurement runner."""

import random

import pytest

from repro.experiments import ResultTable, measure, staggered_starts
from repro.sim import BulkTransfer, DropTailQueue, Link, PathSpec, Simulator


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable("Demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", 0.001)
        text = str(table)
        assert "Demo" in text
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_wrong_arity_rejected(self):
        table = ResultTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_access(self):
        table = ResultTable("Demo", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_notes_rendered(self):
        table = ResultTable("Demo", ["a"])
        table.add_row(1)
        table.add_note("hello note")
        assert "hello note" in str(table)


class TestRunner:
    def test_staggered_starts_in_range(self):
        starts = staggered_starts(random.Random(1), 10, spread=2.0)
        assert len(starts) == 10
        assert all(0 <= s < 2.0 for s in starts)

    def test_measure_excludes_warmup(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, delay=0.005,
                    queue=DropTailQueue(limit=100))
        bulk = BulkTransfer(sim, "tcp", [PathSpec((link,), 0.005)])
        bulk.start()
        result = measure(sim, {"f": bulk}, [link], warmup=1.0,
                         duration=2.0)
        # Goodput should reflect steady state, not the slow-start ramp.
        assert result.goodput_pps["f"] > 0
        assert result.duration == 2.0
        assert 0 <= result.link_loss["link"] <= 1

    def test_group_mean(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, delay=0.005,
                    queue=DropTailQueue(limit=100))
        flows = {}
        for i in range(2):
            bulk = BulkTransfer(sim, "tcp", [PathSpec((link,), 0.005)],
                                name=f"g.{i}")
            bulk.start()
            flows[f"g.{i}"] = bulk
        result = measure(sim, flows, [link], warmup=0.5, duration=1.0)
        mean = result.group_mean("g")
        assert mean == pytest.approx(
            sum(result.goodput_pps.values()) / 2)
        with pytest.raises(KeyError):
            result.group_mean("missing")

    def test_measure_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            measure(sim, {}, [], warmup=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            measure(sim, {}, [], warmup=0.0, duration=0.0)
