"""The scale harness: points, report assembly, smoke caps, CLI verb."""

import importlib.util
import json
import math
import pathlib

import pytest

from repro.cli import main
from repro.experiments.scale import (
    SMOKE_DURATION,
    SMOKE_MAX_FLOWS,
    FamilyRun,
    ScaleRun,
    family_table,
    report_table,
    run_family_point,
    run_scale_point,
    scale_report,
    write_report,
)

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    pathlib.Path(__file__).parent.parent / "benchmarks" / "check_bench.py")
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)

# One in-process point everybody below reuses (module-level so the
# numbers stay comparable across asserts without re-running).
_POINT_KWARGS = dict(preset="tiny", backend="auto", duration=0.4,
                     warmup=0.1, seed=2)


@pytest.fixture(scope="module")
def tiny_run():
    return run_scale_point(**_POINT_KWARGS)


class TestRunScalePoint:
    def test_reports_real_work(self, tiny_run):
        assert isinstance(tiny_run, ScaleRun)
        assert tiny_run.n_flows == 24
        assert tiny_run.events > 1000
        assert tiny_run.events_per_sec > 0
        assert 0 < tiny_run.wall_seconds
        assert tiny_run.peak_pending >= tiny_run.final_pending > 0
        assert tiny_run.build_seconds > 0

    def test_goodput_distribution_is_ordered_and_finite(self, tiny_run):
        assert math.isfinite(tiny_run.goodput_mean_pps)
        assert (tiny_run.goodput_p10_pps <= tiny_run.goodput_p50_pps
                <= tiny_run.goodput_p90_pps)

    def test_records_backend_state(self, tiny_run):
        assert tiny_run.backend == "auto"
        assert tiny_run.final_backend in ("heap", "wheel")
        assert tiny_run.migrations >= 0

    def test_same_seed_same_simulation(self, tiny_run):
        again = run_scale_point(**_POINT_KWARGS)
        # Wall-clock differs run to run; the simulation must not.
        assert again.events == tiny_run.events
        assert again.goodput_mean_pps == tiny_run.goodput_mean_pps
        assert again.peak_pending == tiny_run.peak_pending

    def test_unknown_preset_fails(self):
        with pytest.raises(ValueError, match="bogus"):
            run_scale_point(preset="bogus")

    def test_algorithm_override_changes_the_mix(self, tiny_run):
        run = run_scale_point(**dict(_POINT_KWARGS,
                                     algorithms=("balia", "tcp")))
        assert run.n_flows == tiny_run.n_flows
        assert run.events > 1000
        # A different mix is a different simulation.
        assert run.events != tiny_run.events


class TestScaleReportAlgorithms:
    def test_algorithms_recorded_and_validated(self):
        report = scale_report(["tiny"], backends=("auto",),
                              duration=0.3, warmup=0.1, seed=3,
                              smoke=False, algorithms=("balia",))
        assert report["algorithms"] == ["balia"]
        assert check_bench.check_scale_report(report) == []
        with pytest.raises(KeyError, match="known"):
            scale_report(["tiny"], backends=("auto",),
                         algorithms=("not-an-algo",))
        with pytest.raises(ValueError, match="no packet layer"):
            scale_report(["tiny"], backends=("auto",),
                         algorithms=("epsilon",))


class TestScaleReport:
    def test_grid_and_ratio(self, tmp_path):
        report = scale_report(
            ["tiny"], backends=("wheel", "auto"), duration=0.3,
            warmup=0.1, seed=3, smoke=False)
        entry = report["presets"]["tiny"]
        assert set(entry["backends"]) == {"wheel", "auto"}
        assert math.isfinite(entry["auto_vs_wheel"])
        # The report satisfies the CI validator it is gated by.
        assert check_bench.check_scale_report(report) == []
        path = tmp_path / "BENCH_scale.json"
        write_report(report, str(path))
        assert json.loads(path.read_text())["benchmark"] == "BENCH_scale"

    def test_smoke_env_caps_the_workload(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        report = scale_report(["tiny"], backends=("heap",),
                              duration=0.3, warmup=0.1)
        assert report["smoke"] is True
        run = report["presets"]["tiny"]["backends"]["heap"]
        assert run["n_flows"] <= SMOKE_MAX_FLOWS
        assert run["duration"] <= min(0.3, SMOKE_DURATION)

    def test_cached_grid_is_served_verbatim(self, tmp_path):
        kwargs = dict(backends=("heap",), duration=0.3, warmup=0.1,
                      seed=4, smoke=False, cache_dir=tmp_path)
        first = scale_report(["tiny"], **kwargs)
        assert list(tmp_path.glob("*.pkl"))
        second = scale_report(["tiny"], **kwargs)
        one = first["presets"]["tiny"]["backends"]["heap"]
        two = second["presets"]["tiny"]["backends"]["heap"]
        # Cache provenance is tracked per cell; everything else —
        # wall-clock fields included — is served verbatim from disk.
        assert one.pop("from_cache") is False
        assert two.pop("from_cache") is True
        assert one == two

    def test_cached_cells_suppress_the_wall_clock_ratio(self, tmp_path):
        kwargs = dict(backends=("wheel", "auto"), duration=0.3,
                      warmup=0.1, seed=5, smoke=False,
                      cache_dir=tmp_path)
        fresh = scale_report(["tiny"], **kwargs)
        assert "auto_vs_wheel" in fresh["presets"]["tiny"]
        cached = scale_report(["tiny"], **kwargs)
        entry = cached["presets"]["tiny"]
        # A cached cell may have been measured on another machine: no
        # cross-run throughput ratio is reported (and the validator
        # does not demand one).
        assert "auto_vs_wheel" not in entry
        assert entry["auto_vs_wheel_stale"] is True
        assert check_bench.check_scale_report(cached) == []
        assert "omitted" in str(report_table(cached))

    def test_unknown_preset_and_backend_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            scale_report(["bogus"])
        with pytest.raises(ValueError, match="backend"):
            scale_report(["tiny"], backends=("fibheap",))
        with pytest.raises(ValueError, match="engine-backends"):
            scale_report(["tiny"], backends=())
        with pytest.raises(ValueError, match="presets"):
            scale_report([])

    def test_table_renders_every_cell(self):
        report = scale_report(["tiny"], backends=("heap", "auto"),
                              duration=0.3, warmup=0.1, smoke=False)
        text = str(report_table(report))
        assert "tiny" in text and "auto" in text and "heap" in text
        assert "auto vs wheel" not in text   # wheel did not run


class TestFamilyGrid:
    def test_family_point_finishes_its_transfers(self):
        run = run_family_point(family="wired", scheduler="roundrobin",
                               algorithm="olia", max_flows=6,
                               horizon=20.0, seed=7)
        assert isinstance(run, FamilyRun)
        assert run.transfers_completed == run.transfers_total > 0
        assert run.transfer_mean_s is not None
        assert 0 < run.transfer_p50_s <= run.transfer_p90_s

    def test_family_point_is_deterministic(self):
        kwargs = dict(family="dual_lte", scheduler="minrtt",
                      algorithm="olia", max_flows=4, horizon=15.0,
                      seed=9)
        one = run_family_point(**kwargs)
        two = run_family_point(**kwargs)
        assert one.transfer_mean_s == two.transfer_mean_s
        assert one.link_changes == two.link_changes > 0
        assert one.events == two.events

    def test_unknown_family_scheduler_algorithm_rejected(self):
        with pytest.raises(ValueError, match="family"):
            run_family_point(family="bogus")
        with pytest.raises(KeyError, match="known"):
            run_family_point(family="wired", scheduler="fifo")
        with pytest.raises(ValueError, match="no packet layer"):
            run_family_point(family="wired", algorithm="epsilon")

    def test_report_grid_validates_and_renders(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        report = scale_report(
            ["tiny"], backends=("heap",), families=("wired",),
            schedulers=("minrtt", "redundant"), duration=0.3,
            warmup=0.1, seed=3)
        assert report["schedulers"] == ["minrtt", "redundant"]
        cells = report["families"]["wired"]["schedulers"]
        assert set(cells) == {"minrtt", "redundant"}
        for by_algo in cells.values():
            assert set(by_algo) == {"olia"}
            run = by_algo["olia"]
            assert run["transfers_completed"] == run["transfers_total"]
        assert check_bench.check_scale_report(report) == []
        text = str(family_table(report))
        assert "wired" in text and "redundant" in text

    def test_validator_rejects_bad_family_cells(self):
        record = {"transfers_total": 4, "transfers_completed": 4,
                  "transfer_mean_s": 1.0, "transfer_p50_s": 1.0,
                  "transfer_p90_s": 1.5}
        def rep(rec):
            return {"presets": {"tiny": {"backends": {"heap": {}}}},
                    "families": {"wired": {"schedulers":
                                           {"minrtt": {"olia": rec}}}}}
        base = [f for f in check_bench.check_scale_report(rep(record))
                if f.startswith("scale[wired")]
        assert base == []
        stuck = dict(record, transfers_completed=3)
        assert any("3" in f and "4" in f
                   for f in check_bench.check_scale_report(rep(stuck)))
        # NaN round-trips through JSON as a float; it must FAIL loudly.
        poisoned = dict(record, transfer_mean_s=float("nan"))
        assert any("transfer_mean_s" in f
                   for f in check_bench.check_scale_report(rep(poisoned)))

    def test_unknown_packet_scheduler_rejected_in_report(self):
        with pytest.raises(KeyError, match="known"):
            scale_report(["tiny"], families=("wired",),
                         schedulers=("fifo",))
        with pytest.raises(ValueError, match="packet schedulers"):
            scale_report(["tiny"], families=("wired",), schedulers=())


class TestCliVerb:
    def test_scale_round_trip(self, tmp_path, capsys):
        output = tmp_path / "BENCH_scale.json"
        code = main(["scale", "--preset", "tiny", "--duration", "0.3",
                     "--warmup", "0.1", "--engine-backends", "wheel,auto",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scale harness" in out
        report = json.loads(output.read_text())
        assert "tiny" in report["presets"]
        assert check_bench.check_scale_report(report) == []

    def test_unknown_backend_exits_2(self, tmp_path, capsys):
        code = main(["scale", "--preset", "tiny", "--engine-backends", "bogus",
                     "--output", str(tmp_path / "x.json")])
        assert code == 2
        assert "bogus" in capsys.readouterr().err

    def test_empty_backends_exits_2(self, tmp_path, capsys):
        """A shell-quoting accident must not 'succeed' with an empty
        report."""
        code = main(["scale", "--preset", "tiny", "--engine-backends", "",
                     "--output", str(tmp_path / "x.json")])
        assert code == 2
        assert "engine-backends" in capsys.readouterr().err
        assert not (tmp_path / "x.json").exists()

    def test_shard_requires_resume(self, tmp_path, capsys):
        code = main(["scale", "--preset", "tiny", "--shard", "0/2",
                     "--output", str(tmp_path / "x.json")])
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_sharded_runs_merge_through_the_cache(self, tmp_path):
        cache = tmp_path / "cache"
        common = ["--preset", "tiny", "--duration", "0.3", "--warmup",
                  "0.1", "--engine-backends", "heap,wheel,auto",
                  "--resume", str(cache)]
        for shard in ("0/2", "1/2"):
            out = tmp_path / f"shard{shard[0]}.json"
            assert main(["scale", *common, "--shard", shard,
                         "--output", str(out)]) == 0
        merged = tmp_path / "merged.json"
        assert main(["scale", *common, "--output", str(merged)]) == 0
        report = json.loads(merged.read_text())
        assert set(report["presets"]["tiny"]["backends"]) == \
            {"heap", "wheel", "auto"}
        assert check_bench.check_scale_report(report) == []
