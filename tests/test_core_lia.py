"""Unit tests for LIA (Eq. 1 of the paper)."""

import math

import pytest

from repro.core import LiaController, SubflowState


def make_lia(windows, rtts):
    ctrl = LiaController()
    for i, (w, rtt) in enumerate(zip(windows, rtts)):
        ctrl.register_subflow(i, SubflowState(cwnd=w, rtt=rtt))
    return ctrl


class TestLiaIncrement:
    def test_single_path_reduces_to_reno(self):
        """On one path, max(w/rtt^2)/(w/rtt)^2 = 1/w: LIA is regular TCP."""
        ctrl = make_lia([8.0], [0.1])
        assert ctrl.increase_increment(0) == pytest.approx(1.0 / 8.0)

    def test_two_equal_paths_quarter_rate(self):
        """Equal windows/RTTs on two paths: increase is 1/(4w) per path."""
        ctrl = make_lia([10.0, 10.0], [0.1, 0.1])
        for key in (0, 1):
            assert ctrl.increase_increment(key) == pytest.approx(1.0 / 40.0)

    def test_explicit_formula_general_case(self):
        windows, rtts = [6.0, 3.0], [0.05, 0.2]
        ctrl = make_lia(windows, rtts)
        best = max(w / r**2 for w, r in zip(windows, rtts))
        denom = sum(w / r for w, r in zip(windows, rtts)) ** 2
        expected = best / denom
        assert expected < 1.0 / 6.0  # cap inactive here
        assert ctrl.increase_increment(0) == pytest.approx(expected)

    def test_cap_at_reno_increase(self):
        """A tiny window on a path must not get more than TCP's 1/w."""
        # Path 0: small window on a tiny RTT dominates the numerator while
        # path 1 (huge RTT) adds almost nothing to the denominator, making
        # the coupled term approach 1/w_0 = 1 > 1/w_1.
        ctrl = make_lia([1.0, 2.0], [0.001, 10.0])
        coupled = ctrl._max_w_over_rtt_sq() / ctrl._sum_w_over_rtt() ** 2
        assert coupled > 1.0 / 2.0
        assert ctrl.increase_increment(1) == pytest.approx(1.0 / 2.0)

    def test_increment_same_for_all_subflows_when_uncapped(self):
        """Eq. (1)'s coupled term does not depend on the ACKed subflow."""
        ctrl = make_lia([4.0, 9.0], [0.1, 0.1])
        assert ctrl.increase_increment(0) == pytest.approx(
            ctrl.increase_increment(1))

    def test_rtt_compensation_favors_low_rtt(self):
        """With equal windows, a smaller-RTT path dominates the numerator."""
        ctrl = make_lia([10.0, 10.0], [0.05, 0.2])
        expected_num = 10.0 / 0.05**2
        denom = (10.0 / 0.05 + 10.0 / 0.2) ** 2
        assert ctrl.increase_increment(0) == pytest.approx(expected_num / denom)


class TestLiaSawtooth:
    def test_single_path_average_matches_tcp_sawtooth(self):
        """Deterministic loss every 1/p ACKs gives the Reno sawtooth mean.

        With a loss every ``1/p`` packets the window oscillates around the
        AIMD sawtooth whose mean is ``sqrt(3/(2p))`` — the classic
        square-root law within a few percent.
        """
        p = 1e-3
        ctrl = make_lia([10.0], [0.1])
        state = ctrl.subflows[0]
        samples = []
        acks_until_loss = int(1 / p)
        for _ in range(60):
            for _ in range(acks_until_loss):
                ctrl.increase_on_ack(0)
            samples.append(state.cwnd)
            ctrl.decrease_on_loss(0)
        peak = sum(samples[10:]) / len(samples[10:])
        expected_peak = math.sqrt(8.0 / (3.0 * p))
        assert peak == pytest.approx(expected_peak, rel=0.15)

    def test_two_symmetric_paths_stay_symmetric(self):
        ctrl = make_lia([5.0, 5.0], [0.1, 0.1])
        for round_ in range(50):
            for _ in range(200):
                ctrl.increase_on_ack(0)
                ctrl.increase_on_ack(1)
            ctrl.decrease_on_loss(0)
            ctrl.decrease_on_loss(1)
        w0 = ctrl.subflows[0].cwnd
        w1 = ctrl.subflows[1].cwnd
        # Sequential per-ACK updates introduce a tiny order effect, so the
        # windows track each other closely rather than exactly.
        assert w0 == pytest.approx(w1, rel=1e-2)
        assert w0 > 1.0
