"""Integration tests: scenario experiments reproduce the paper's shapes.

These run the packet simulator at short durations, asserting the
*qualitative* claims of each figure/table (who wins, orderings, factor
ranges) rather than absolute numbers.
"""

import pytest

from repro.experiments import scenario_a, scenario_b, scenario_c

FAST = dict(duration=12.0, warmup=8.0)


class TestScenarioASimulation:
    @pytest.fixture(scope="class")
    def runs(self):
        lia = scenario_a.simulate("lia", n1=10, n2=10, c1_mbps=1.0,
                                  c2_mbps=1.0, **FAST)
        olia = scenario_a.simulate("olia", n1=10, n2=10, c1_mbps=1.0,
                                   c2_mbps=1.0, **FAST)
        return lia, olia

    def test_type1_pinned_at_capacity(self, runs):
        """Problem P1: type1 throughput is server-limited either way."""
        lia, olia = runs
        assert lia.type1_normalized == pytest.approx(1.0, abs=0.1)
        assert olia.type1_normalized == pytest.approx(1.0, abs=0.1)

    def test_olia_gives_type2_more(self, runs):
        """Fig. 9: type2 users do better when type1 run OLIA."""
        lia, olia = runs
        assert olia.type2_normalized > lia.type2_normalized

    def test_olia_reduces_shared_ap_congestion(self, runs):
        """Fig. 10: p2 lower under OLIA."""
        lia, olia = runs
        assert olia.p2 < lia.p2

    def test_figure1_table_structure(self):
        table = scenario_a.figure1_table(n1_values=(10, 30),
                                         c1_over_c2=(1.0,))
        assert len(table.rows) == 2
        type2 = table.column("type2 LIA")
        assert type2[0] > type2[1]  # more type1 users hurt type2

    def test_figure9_table_runs(self):
        table = scenario_a.figure9_10_table(
            n1_values=(10,), c1_over_c2=(1.0,), **FAST)
        assert len(table.rows) == 1
        row = table.rows[0]
        olia_col = table.columns.index("type2 OLIA")
        lia_col = table.columns.index("type2 LIA")
        assert row[olia_col] > row[lia_col]


class TestScenarioBSimulation:
    def test_table1_lia_upgrade_hurts_everyone(self):
        single = scenario_b.simulate("lia", red_multipath=False, **FAST)
        multi = scenario_b.simulate("lia", red_multipath=True, **FAST)
        assert multi.blue_mbps < single.blue_mbps
        assert multi.aggregate_mbps < single.aggregate_mbps
        drop = 1.0 - multi.aggregate_mbps / single.aggregate_mbps
        assert drop > 0.05  # paper: 13%

    def test_table2_olia_drop_smaller_than_lia(self):
        def agg_drop(algorithm):
            single = scenario_b.simulate(algorithm, red_multipath=False,
                                         **FAST)
            multi = scenario_b.simulate(algorithm, red_multipath=True,
                                        **FAST)
            return 1.0 - multi.aggregate_mbps / single.aggregate_mbps

        assert agg_drop("olia") < agg_drop("lia")

    def test_single_path_rates_match_paper_scale(self):
        """Paper Table I single-path row: Blue ~2.5, Red ~1.5 Mbps."""
        run = scenario_b.simulate("lia", red_multipath=False, **FAST)
        assert run.blue_mbps == pytest.approx(2.5, abs=0.5)
        assert run.red_mbps == pytest.approx(1.5, abs=0.5)

    def test_table_render(self):
        table = scenario_b.table_1_2("lia", **FAST)
        text = str(table)
        assert "Single-path" in text and "Multipath" in text


class TestScenarioCSimulation:
    def test_olia_better_for_single_path_users(self):
        lia = scenario_c.simulate("lia", n1=20, n2=10, c1_mbps=1.0,
                                  c2_mbps=1.0, **FAST)
        olia = scenario_c.simulate("olia", n1=20, n2=10, c1_mbps=1.0,
                                   c2_mbps=1.0, **FAST)
        assert olia.singlepath_normalized > lia.singlepath_normalized
        assert olia.p2 < lia.p2

    def test_figure5b_table_shape(self):
        table = scenario_c.figure5b_table()
        mp_lia = table.column("mp LIA")
        mp_opt = table.column("mp opt")
        ratios = table.column("C1/C2")
        # Above the 1/3 threshold LIA exceeds the optimum (problem P2).
        for ratio, lia_val, opt_val in zip(ratios, mp_lia, mp_opt):
            if ratio > 0.5:
                assert lia_val > opt_val

    def test_figure5cd_analysis_columns(self):
        table = scenario_c.figure5cd_table(n1_values=(10, 30),
                                           c1_over_c2=(1.0,))
        p2 = table.column("p2 LIA")
        assert p2[1] > p2[0]  # congestion grows with N1
