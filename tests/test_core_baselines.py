"""Unit tests for the baseline controllers (Reno, coupled, EWTCP)."""

import pytest

from repro.core import (
    CoupledController,
    EwtcpController,
    RenoController,
    SubflowState,
    UncoupledController,
)


def register(ctrl, windows, rtts):
    for i, (w, rtt) in enumerate(zip(windows, rtts)):
        ctrl.register_subflow(i, SubflowState(cwnd=w, rtt=rtt))
    return ctrl


class TestReno:
    def test_increment_is_one_over_w(self):
        ctrl = register(RenoController(), [4.0], [0.1])
        assert ctrl.increase_increment(0) == pytest.approx(0.25)

    def test_subflows_independent(self):
        """Uncoupled: changing one window never affects the other's rule."""
        ctrl = register(RenoController(), [4.0, 100.0], [0.1, 0.1])
        assert ctrl.increase_increment(0) == pytest.approx(0.25)

    def test_uncoupled_alias(self):
        assert UncoupledController is RenoController


class TestCoupled:
    def test_single_path_is_reno(self):
        ctrl = register(CoupledController(), [5.0], [0.1])
        assert ctrl.increase_increment(0) == pytest.approx(0.2)

    def test_matches_olia_without_alpha(self):
        """The coupled increment equals OLIA's first term exactly."""
        windows, rtts = [6.0, 3.0], [0.05, 0.2]
        ctrl = register(CoupledController(), windows, rtts)
        denom = sum(w / r for w, r in zip(windows, rtts)) ** 2
        for i, (w, r) in enumerate(zip(windows, rtts)):
            assert ctrl.increase_increment(i) == pytest.approx(
                (w / r**2) / denom)

    def test_rich_path_gets_richer(self):
        """The fully coupled rule favours the larger window (flappiness root)."""
        ctrl = register(CoupledController(), [10.0, 1.0], [0.1, 0.1])
        assert ctrl.increase_increment(0) > ctrl.increase_increment(1)


class TestEwtcp:
    def test_default_weight_one_over_n_squared(self):
        ctrl = register(EwtcpController(), [4.0, 4.0], [0.1, 0.1])
        assert ctrl.weight == pytest.approx(0.25)
        assert ctrl.increase_increment(0) == pytest.approx(0.25 / 4.0)

    def test_explicit_weight(self):
        ctrl = register(EwtcpController(weight=0.5), [4.0], [0.1])
        assert ctrl.increase_increment(0) == pytest.approx(0.5 / 4.0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            EwtcpController(weight=0.0)

    def test_weight_tracks_subflow_count(self):
        ctrl = EwtcpController()
        ctrl.register_subflow(0, SubflowState())
        assert ctrl.weight == pytest.approx(1.0)
        ctrl.register_subflow(1, SubflowState())
        assert ctrl.weight == pytest.approx(0.25)
        ctrl.register_subflow(2, SubflowState())
        assert ctrl.weight == pytest.approx(1.0 / 9.0)
