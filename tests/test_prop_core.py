"""Property-based tests (hypothesis) for the congestion controllers."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    CoupledController,
    EwtcpController,
    LiaController,
    OliaController,
    RenoController,
    SubflowState,
)

windows = st.floats(min_value=1.0, max_value=1000.0,
                    allow_nan=False, allow_infinity=False)
rtts = st.floats(min_value=1e-3, max_value=5.0,
                 allow_nan=False, allow_infinity=False)
interloss = st.floats(min_value=0.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False)


def subflow_lists(min_size=1, max_size=6):
    return st.lists(st.tuples(windows, rtts, interloss),
                    min_size=min_size, max_size=max_size)


def build(controller, params):
    for i, (w, rtt, l) in enumerate(params):
        state = SubflowState(cwnd=w, rtt=rtt)
        state.bytes_acked_since_loss = l
        controller.register_subflow(i, state)
    return controller


class TestOliaProperties:
    @given(subflow_lists())
    def test_alphas_always_sum_to_zero(self, params):
        ctrl = build(OliaController(), params)
        assert abs(sum(ctrl.alphas().values())) < 1e-12

    @given(subflow_lists())
    def test_alphas_bounded_by_one_over_n(self, params):
        ctrl = build(OliaController(), params)
        bound = 1.0 / len(params) + 1e-12
        for alpha in ctrl.alphas().values():
            assert -bound <= alpha <= bound

    @given(subflow_lists())
    def test_alpha_positive_only_outside_max_window_set(self, params):
        ctrl = build(OliaController(), params)
        max_set = set(ctrl.max_window_paths())
        for key, alpha in ctrl.alphas().items():
            if alpha > 0:
                assert key not in max_set
            if alpha < 0:
                assert key in max_set

    @given(subflow_lists())
    def test_single_best_max_path_means_all_zero(self, params):
        ctrl = build(OliaController(), params)
        best = set(ctrl.best_paths())
        maxw = set(ctrl.max_window_paths())
        if best <= maxw:
            assert all(a == 0.0 for a in ctrl.alphas().values())

    @given(subflow_lists())
    def test_window_never_below_one_after_any_event(self, params):
        ctrl = build(OliaController(), params)
        for key in range(len(params)):
            ctrl.increase_on_ack(key)
            assert ctrl.subflows[key].cwnd >= 1.0
            ctrl.decrease_on_loss(key)
            assert ctrl.subflows[key].cwnd >= 1.0


class TestLiaProperties:
    @given(subflow_lists())
    def test_increment_capped_by_reno(self, params):
        """Design goal 2: never more aggressive than TCP on any path."""
        ctrl = build(LiaController(), params)
        for key in range(len(params)):
            increment = ctrl.increase_increment(key)
            assert increment <= 1.0 / ctrl.subflows[key].cwnd + 1e-12
            assert increment > 0

    @given(subflow_lists(min_size=2))
    def test_total_increase_at_most_best_path_tcp(self, params):
        """The coupled term is the same for all subflows (when uncapped),
        bounded by the best single-path increase."""
        ctrl = build(LiaController(), params)
        coupled = ctrl._max_w_over_rtt_sq() / ctrl._sum_w_over_rtt() ** 2
        best_reno = max(1.0 / s.cwnd for s in ctrl.states())
        assert coupled <= best_reno * len(params)

    @given(st.floats(min_value=1.0, max_value=500.0), rtts)
    def test_single_path_equals_reno(self, w, rtt):
        lia = build(LiaController(), [(w, rtt, 0.0)])
        reno = build(RenoController(), [(w, rtt, 0.0)])
        assert abs(lia.increase_increment(0)
                   - reno.increase_increment(0)) < 1e-15


class TestCoupledAndEwtcpProperties:
    @given(subflow_lists())
    def test_coupled_increments_positive(self, params):
        ctrl = build(CoupledController(), params)
        for key in range(len(params)):
            assert ctrl.increase_increment(key) > 0

    @given(subflow_lists())
    def test_olia_equals_coupled_plus_alpha(self, params):
        olia = build(OliaController(), params)
        coupled = build(CoupledController(), params)
        alphas = olia.alphas()
        for key in range(len(params)):
            w = olia.subflows[key].cwnd
            expected = coupled.increase_increment(key) + alphas[key] / w
            assert abs(olia.increase_increment(key) - expected) < 1e-12

    @given(subflow_lists())
    def test_ewtcp_weight_in_unit_interval(self, params):
        ctrl = build(EwtcpController(), params)
        assert 0 < ctrl.weight <= 1.0


class TestDecreaseProperties:
    @given(subflow_lists(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=50)
    def test_halving_sequence_reaches_floor(self, params, n_losses):
        ctrl = build(OliaController(), params)
        for key in range(len(params)):
            for _ in range(n_losses):
                before = ctrl.subflows[key].cwnd
                after = ctrl.decrease_on_loss(key)
                assert after == max(before / 2.0, 1.0)

    @given(subflow_lists())
    def test_loss_rolls_counters(self, params):
        ctrl = build(OliaController(), params)
        for key in range(len(params)):
            l2_before = ctrl.subflows[key].bytes_acked_since_loss
            ctrl.decrease_on_loss(key)
            state = ctrl.subflows[key]
            assert state.bytes_between_last_losses == l2_before
            assert state.bytes_acked_since_loss == 0.0
