"""Unit tests for the fluid network container."""

import numpy as np
import pytest

from repro.fluid import FluidNetwork, PowerLoss


def two_link_network():
    net = FluidNetwork()
    l1 = net.add_link(PowerLoss(capacity=100.0), name="ap1")
    l2 = net.add_link(PowerLoss(capacity=50.0), name="ap2")
    u = net.add_user("mp")
    r1 = net.add_route(u, [l1], rtt=0.1)
    r2 = net.add_route(u, [l2], rtt=0.1)
    v = net.add_user("sp")
    r3 = net.add_route(v, [l2], rtt=0.1)
    return net, (l1, l2), (r1, r2, r3)


class TestConstruction:
    def test_sizes(self):
        net, _, _ = two_link_network()
        assert (net.n_links, net.n_users, net.n_routes) == (2, 2, 3)

    def test_names(self):
        net, _, _ = two_link_network()
        assert net.link_name(0) == "ap1"
        assert net.user_name(1) == "sp"
        assert net.route_name(2) == "route2"

    def test_invalid_route_rtt(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(10.0))
        user = net.add_user()
        with pytest.raises(ValueError):
            net.add_route(user, [link], rtt=0.0)

    def test_route_needs_links(self):
        net = FluidNetwork()
        user = net.add_user()
        with pytest.raises(ValueError):
            net.add_route(user, [], rtt=0.1)

    def test_unknown_link_rejected(self):
        net = FluidNetwork()
        user = net.add_user()
        with pytest.raises(ValueError):
            net.add_route(user, [3], rtt=0.1)


class TestRateAccounting:
    def test_link_rates_sum_routes(self):
        net, _, _ = two_link_network()
        x = np.array([10.0, 5.0, 7.0])
        rates = net.link_rates(x)
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(12.0)  # routes 1 and 2 share ap2

    def test_user_totals(self):
        net, _, _ = two_link_network()
        totals = net.user_totals(np.array([10.0, 5.0, 7.0]))
        assert totals[0] == pytest.approx(15.0)
        assert totals[1] == pytest.approx(7.0)

    def test_route_loss_sums_links(self):
        net = FluidNetwork()
        l1 = net.add_link(PowerLoss(capacity=10.0, p_at_capacity=0.1,
                                    exponent=1.0))
        l2 = net.add_link(PowerLoss(capacity=10.0, p_at_capacity=0.2,
                                    exponent=1.0))
        u = net.add_user()
        net.add_route(u, [l1, l2], rtt=0.1)
        x = np.array([10.0])
        p = net.route_loss_probs(x)
        assert p[0] == pytest.approx(0.3)

    def test_route_loss_capped_at_one(self):
        net = FluidNetwork()
        links = [net.add_link(PowerLoss(capacity=1.0, p_at_capacity=0.9,
                                        exponent=1.0)) for _ in range(3)]
        u = net.add_user()
        net.add_route(u, links, rtt=0.1)
        p = net.route_loss_probs(np.array([1.0]))
        assert p[0] == 1.0

    def test_congestion_cost_additive_over_links(self):
        net, _, _ = two_link_network()
        x = np.array([120.0, 30.0, 40.0])
        expected = (net.loss_model(0).cost(120.0)
                    + net.loss_model(1).cost(70.0))
        assert net.congestion_cost(x) == pytest.approx(expected)

    def test_describe_mentions_entities(self):
        net, _, _ = two_link_network()
        text = net.describe()
        assert "ap1" in text and "mp" in text and "sp" in text
