"""Unit tests for the fluid dynamics (derivative functions)."""

import numpy as np
import pytest

from repro.fluid.dynamics import (
    CoupledFluid,
    EwtcpFluid,
    LiaFluid,
    OliaFluid,
    TcpFluid,
    make_fluid_algorithm,
)


class TestTcpFluid:
    def test_equilibrium_zero_derivative(self):
        """dx/dt = 0 exactly at x = sqrt(2/p)/rtt."""
        algo = TcpFluid()
        p, rtt = 0.01, 0.1
        x = np.array([np.sqrt(2.0 / p) / rtt])
        dx = algo.derivative(x, np.array([p]), np.array([rtt]))
        assert dx[0] == pytest.approx(0.0, abs=1e-9)

    def test_increase_below_equilibrium(self):
        algo = TcpFluid()
        dx = algo.derivative(np.array([10.0]), np.array([0.01]),
                             np.array([0.1]))
        assert dx[0] > 0

    def test_decrease_above_equilibrium(self):
        algo = TcpFluid()
        dx = algo.derivative(np.array([1000.0]), np.array([0.01]),
                             np.array([0.1]))
        assert dx[0] < 0


class TestLiaFluid:
    def test_single_route_matches_tcp(self):
        lia, tcp = LiaFluid(), TcpFluid()
        x, p, rtt = np.array([50.0]), np.array([0.01]), np.array([0.1])
        assert lia.derivative(x, p, rtt)[0] == pytest.approx(
            tcp.derivative(x, p, rtt)[0])

    def test_fixed_point_of_eq2_is_stationary(self):
        """LIA's Eq. (2) allocation zeroes the LIA fluid derivative."""
        from repro.fluid.equilibrium import lia_allocation
        p = np.array([0.005, 0.02])
        rtt = np.array([0.1, 0.1])
        x = lia_allocation(p, rtt)
        dx = LiaFluid().derivative(x, p, rtt)
        scale = float(np.max(np.abs(x))) / 0.1  # rate/rtt ~ derivative scale
        assert np.max(np.abs(dx)) / scale < 1e-6

    def test_cap_limits_increase(self):
        """The min() cap keeps the per-route increase at most TCP's."""
        lia = LiaFluid()
        # Tiny rate on route 1 -> cap 1/(x rtt) binds.
        x = np.array([100.0, 0.5])
        p = np.array([0.0, 0.0])
        rtt = np.array([0.001, 1.0])
        dx = lia.derivative(x, p, rtt)
        tcp_like = x[1] / rtt[1] * (1.0 / (x[1] * rtt[1]))
        assert dx[1] <= tcp_like + 1e-9

    def test_zero_rates_recover(self):
        lia = LiaFluid()
        dx = lia.derivative(np.zeros(2), np.zeros(2), np.array([0.1, 0.1]))
        assert np.all(dx > 0)


class TestOliaFluid:
    def test_single_route_matches_tcp(self):
        olia, tcp = OliaFluid(), TcpFluid()
        x, p, rtt = np.array([50.0]), np.array([0.01]), np.array([0.1])
        assert olia.derivative(x, p, rtt)[0] == pytest.approx(
            tcp.derivative(x, p, rtt)[0])

    def test_alphas_sum_to_zero(self):
        olia = OliaFluid()
        rng = np.random.default_rng(3)
        for _ in range(100):
            n = rng.integers(1, 6)
            x = rng.uniform(0.5, 100.0, n)
            p = rng.uniform(1e-4, 0.2, n)
            rtt = rng.uniform(0.01, 0.3, n)
            assert np.sum(olia.alphas(x, p, rtt)) == pytest.approx(0.0,
                                                                   abs=1e-12)

    def test_alpha_moves_mass_towards_best_path(self):
        olia = OliaFluid()
        # Route 0: big window but lossy; route 1: small window, clean.
        x = np.array([50.0, 1.0])
        p = np.array([0.05, 0.001])
        rtt = np.array([0.1, 0.1])
        alphas = olia.alphas(x, p, rtt)
        assert alphas[1] > 0
        assert alphas[0] < 0

    def test_alpha_zero_when_best_has_max_window(self):
        olia = OliaFluid()
        x = np.array([50.0, 1.0])
        p = np.array([0.001, 0.05])
        rtt = np.array([0.1, 0.1])
        assert np.all(olia.alphas(x, p, rtt) == 0.0)

    def test_theorem1_point_is_stationary(self):
        """Best-path-only allocation with total = TCP rate is a fixed point."""
        olia = OliaFluid()
        p = np.array([0.001, 0.05])
        rtt = np.array([0.1, 0.1])
        best_rate = np.sqrt(2.0 / p[0]) / rtt[0]
        x = np.array([best_rate, 0.0])
        dx = olia.derivative(x, p, rtt)
        assert dx[0] == pytest.approx(0.0, abs=1e-6)
        # The abandoned path only feels (non-negative) alpha probing.
        assert dx[1] >= 0.0

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            OliaFluid(tie_tolerance=-1.0)


class TestCoupledAndEwtcp:
    def test_coupled_is_olia_without_alpha(self):
        x = np.array([30.0, 10.0])
        p = np.array([0.01, 0.02])
        rtt = np.array([0.1, 0.2])
        coupled = CoupledFluid().derivative(x, p, rtt)
        total = np.sum(x)
        expected = x * x * (1.0 / (rtt * rtt * total * total) - p / 2.0)
        assert np.allclose(coupled, expected)

    def test_ewtcp_weight_quarter_for_two_paths(self):
        x = np.array([10.0, 10.0])
        p = np.zeros(2)
        rtt = np.array([0.1, 0.1])
        dx = EwtcpFluid().derivative(x, p, rtt)
        assert np.allclose(dx, 0.25 / 0.01)


class TestFactory:
    def test_known_names(self):
        for name, cls in (("tcp", TcpFluid), ("lia", LiaFluid),
                          ("olia", OliaFluid), ("coupled", CoupledFluid),
                          ("ewtcp", EwtcpFluid)):
            with pytest.deprecated_call():
                algo = make_fluid_algorithm(name)
            assert isinstance(algo, cls)

    def test_unknown_name(self):
        with pytest.raises(KeyError), pytest.deprecated_call():
            make_fluid_algorithm("nope")
