"""Property-based tests for the scenario closed forms.

For random valid parameters, the fixed points must satisfy the paper's
capacity constraints and polynomial identities exactly — these are the
invariants that make the analysis trustworthy across the whole sweep
range, not just at the figures' sample points.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.analysis import scenario_a, scenario_b, scenario_c

user_counts = st.integers(min_value=1, max_value=50)
capacities = st.floats(min_value=20.0, max_value=2000.0,
                       allow_nan=False, allow_infinity=False)
rtts = st.floats(min_value=0.02, max_value=0.5,
                 allow_nan=False, allow_infinity=False)


class TestScenarioAProperties:
    @given(user_counts, user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_capacity_constraints_always_hold(self, n1, n2, c1, c2, rtt):
        res = scenario_a.lia_fixed_point(n1=n1, n2=n2, c1=c1, c2=c2,
                                         rtt=rtt)
        # Server: x1 + x2 = C1.
        assert res.x1 + res.x2 == pytest.approx(c1, rel=1e-6)
        # Shared AP: N1 x2 + N2 y = N2 C2.
        assert n1 * res.x2 + n2 * res.y == pytest.approx(n2 * c2,
                                                         rel=1e-6)

    @given(user_counts, user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_eq10_residual_zero(self, n1, n2, c1, c2, rtt):
        res = scenario_a.lia_fixed_point(n1=n1, n2=n2, c1=c1, c2=c2,
                                         rtt=rtt)
        z = (res.p1 / res.p2) ** 0.5
        residual = z + (n1 / n2) * z * z / (1 + 2 * z * z) - c2 / c1
        assert abs(residual) < 1e-6

    @given(user_counts, user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_rates_and_losses_positive(self, n1, n2, c1, c2, rtt):
        res = scenario_a.lia_fixed_point(n1=n1, n2=n2, c1=c1, c2=c2,
                                         rtt=rtt)
        assert res.x1 >= 0 and res.x2 > 0 and res.y > 0
        assert 0 < res.p1 and 0 < res.p2

    @given(user_counts, user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_optimum_beats_lia_for_type2(self, n1, n2, c1, c2, rtt):
        assume(c2 > (n1 / n2) / rtt * 1.5)  # probing must fit
        lia = scenario_a.lia_fixed_point(n1=n1, n2=n2, c1=c1, c2=c2,
                                         rtt=rtt)
        # The LIA closed form does not model the 1-MSS/RTT floor: when
        # C1 >> C2 its x2 drops below the floor and it can nominally
        # edge out the optimum-with-probing baseline.  Only the regime
        # where LIA actually sends at least probing traffic is
        # physically meaningful.
        assume(lia.x2 >= 1.0 / rtt)
        opt = scenario_a.optimum_with_probing(n1=n1, n2=n2, c1=c1,
                                              c2=c2, rtt=rtt)
        assert opt.y >= lia.y - 1e-9


class TestScenarioCProperties:
    @given(user_counts, user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_ap2_capacity_constraint(self, n1, n2, c1, c2, rtt):
        res = scenario_c.lia_fixed_point(n1=n1, n2=n2, c1=c1, c2=c2,
                                         rtt=rtt)
        assert n1 * res.x2 + n2 * res.y == pytest.approx(n2 * c2,
                                                         rel=1e-6)

    @given(user_counts, user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_x1_fills_private_ap(self, n1, n2, c1, c2, rtt):
        res = scenario_c.lia_fixed_point(n1=n1, n2=n2, c1=c1, c2=c2,
                                         rtt=rtt)
        assert res.x1 == pytest.approx(c1, rel=1e-9)

    @given(user_counts, user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_loss_ordering_matches_threshold(self, n1, n2, c1, c2, rtt):
        res = scenario_c.lia_fixed_point(n1=n1, n2=n2, c1=c1, c2=c2,
                                         rtt=rtt)
        if c1 / c2 > scenario_c.lia_threshold(n1, n2):
            assert res.p1 <= res.p2 * (1 + 1e-9)
        else:
            assert res.p1 >= res.p2 * (1 - 1e-9)

    @given(user_counts, user_counts, capacities, capacities)
    @settings(max_examples=100)
    def test_fair_allocation_conserves_capacity(self, n1, n2, c1, c2):
        mp, sp = scenario_c.fair_allocation(n1, n2, c1, c2)
        total = n1 * mp + n2 * sp
        assert total <= n1 * c1 + n2 * c2 + 1e-6
        assert mp >= c1 - 1e-9  # multipath never below its private AP


class TestScenarioBProperties:
    @given(user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_multipath_capacity_identities(self, n, cx, ct, rtt):
        res = scenario_b.lia_multipath(n_users=n, cx=cx, ct=ct, rtt=rtt)
        assert n * (res.x1 + res.y1) == pytest.approx(cx, rel=1e-4)
        assert n * (res.x2 + res.y1 + res.y2) == pytest.approx(ct,
                                                               rel=1e-4)

    @given(user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_all_rates_positive(self, n, cx, ct, rtt):
        res = scenario_b.lia_multipath(n_users=n, cx=cx, ct=ct, rtt=rtt)
        for value in (res.x1, res.x2, res.y1, res.y2):
            assert value > 0

    @given(user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_upgrade_never_helps_under_lia(self, n, cx, ct, rtt):
        """Problem P1 holds over the whole parameter space."""
        single = scenario_b.lia_singlepath(n_users=n, cx=cx, ct=ct,
                                           rtt=rtt)
        multi = scenario_b.lia_multipath(n_users=n, cx=cx, ct=ct,
                                         rtt=rtt)
        assert multi.aggregate <= single.aggregate * (1 + 1e-6)

    @given(user_counts, capacities, capacities, rtts)
    @settings(max_examples=100)
    def test_optimum_aggregate_drop_is_exactly_probing(self, n, cx, ct,
                                                       rtt):
        assume(ct / n > 3.0 / rtt)  # probing must fit comfortably
        single = scenario_b.optimum_singlepath(n_users=n, cx=cx, ct=ct,
                                               rtt=rtt)
        multi = scenario_b.optimum_multipath(n_users=n, cx=cx, ct=ct,
                                             rtt=rtt)
        drop = single.aggregate - multi.aggregate
        assert drop == pytest.approx(n / rtt, rel=1e-6)
