"""White-box tests of TCP loss recovery using deterministic loss injection.

A ``ScriptedLink`` drops an exact set of (seq, transmission-count) pairs,
so each recovery mechanism — fast retransmit, NewReno partial ACKs,
RTO, Karn's algorithm, backoff — can be exercised in isolation.
"""

import pytest

from repro.sim import DropTailQueue, Link, Simulator, single_path_tcp


class ScriptedLink(Link):
    """Drops the n-th transmission of selected sequence numbers.

    ``drops`` maps seq -> set of transmission indices to drop (0 = the
    first copy).  Every other packet is forwarded normally.
    """

    __slots__ = ("drops", "seen", "dropped_log")

    def __init__(self, sim, drops, rate_bps=12_000_000, delay=0.01):
        super().__init__(sim, rate_bps=rate_bps, delay=delay,
                         queue=DropTailQueue(limit=10_000),
                         name="scripted")
        self.drops = {seq: set(indices) for seq, indices in drops.items()}
        self.seen: dict[int, int] = {}
        self.dropped_log = []

    def receive(self, packet):
        attempt = self.seen.get(packet.seq, 0)
        self.seen[packet.seq] = attempt + 1
        if attempt in self.drops.get(packet.seq, ()):
            self.stats.arrivals += 1
            self.stats.drops += 1
            self.dropped_log.append((packet.seq, attempt))
            return
        super().receive(packet)


def make_flow(sim, link, size=None):
    fcts = []
    flow = single_path_tcp(sim, (link,), reverse_delay=0.01,
                           size_packets=size,
                           on_complete=fcts.append)
    return flow, fcts


class TestFastRetransmit:
    def test_single_loss_recovers_without_timeout(self):
        sim = Simulator()
        link = ScriptedLink(sim, drops={20: {0}})
        flow, fcts = make_flow(sim, link, size=60)
        flow.start(0.0)
        sim.run(until=30.0)
        assert flow.completed
        assert flow.timeouts == 0
        assert flow.retransmits == 1
        assert link.dropped_log == [(20, 0)]

    def test_window_halved_exactly_once(self):
        sim = Simulator()
        link = ScriptedLink(sim, drops={30: {0}})
        flow, _ = make_flow(sim, link, size=80)
        flow.start(0.0)
        # Sample the window just before and after the loss event.
        observed = []

        def watch():
            observed.append(flow.cwnd)
            if not flow.completed:
                sim.schedule(0.005, watch)

        sim.schedule(0.0, watch)
        sim.run(until=30.0)
        assert flow.completed
        peak = max(observed)
        # A single halving: the minimum post-loss window is >= peak/2 - 1.
        after_loss = min(w for w in observed[observed.index(peak):])
        assert after_loss >= peak / 2.0 - 1.5

    def test_two_losses_in_different_windows_two_halvings(self):
        sim = Simulator()
        link = ScriptedLink(sim, drops={20: {0}, 60: {0}})
        flow, _ = make_flow(sim, link, size=100)
        flow.start(0.0)
        sim.run(until=40.0)
        assert flow.completed
        assert flow.retransmits == 2
        assert flow.timeouts == 0


class TestNewRenoPartialAcks:
    def test_multiple_losses_one_window_single_halving(self):
        """Three drops in one flight: one fast-retransmit halving, the
        other holes repaired by partial-ACK retransmissions."""
        sim = Simulator()
        link = ScriptedLink(sim, drops={30: {0}, 32: {0}, 34: {0}})
        flow, _ = make_flow(sim, link, size=80)
        flow.start(0.0)
        sim.run(until=40.0)
        assert flow.completed
        assert flow.rcv_nxt == 80
        # All three holes repaired by retransmission.
        assert flow.retransmits >= 3

    def test_no_duplicate_delivery(self):
        sim = Simulator()
        link = ScriptedLink(sim, drops={10: {0}, 11: {0}, 12: {0}})
        flow, _ = make_flow(sim, link, size=40)
        flow.start(0.0)
        sim.run(until=40.0)
        assert flow.completed
        assert flow.snd_una == 40


class TestTimeout:
    def test_tail_loss_needs_rto(self):
        """Dropping the final packets leaves no dupacks: only RTO saves."""
        sim = Simulator()
        link = ScriptedLink(sim, drops={38: {0}, 39: {0}})
        flow, fcts = make_flow(sim, link, size=40)
        flow.start(0.0)
        sim.run(until=60.0)
        assert flow.completed
        assert flow.timeouts >= 1
        # RTO is at least min_rto=200ms: FCT reflects the stall.
        assert fcts[0] > 0.2

    def test_repeated_loss_of_same_packet_backs_off(self):
        """The same segment dropped 3 times: exponential backoff."""
        sim = Simulator()
        link = ScriptedLink(sim, drops={39: {0, 1, 2}})
        flow, fcts = make_flow(sim, link, size=40)
        flow.start(0.0)
        sim.run(until=120.0)
        assert flow.completed
        # First RTO ~0.2s, then ~0.4s, then ~0.8s before success.
        assert fcts[0] > 0.2 + 0.4
        assert flow.timeouts >= 2

    def test_window_collapses_to_one_on_timeout(self):
        sim = Simulator()
        link = ScriptedLink(sim, drops={39: {0}})
        flow, _ = make_flow(sim, link, size=40)
        flow.start(0.0)
        windows = []

        def watch():
            windows.append(flow.cwnd)
            if not flow.completed:
                sim.schedule(0.01, watch)

        sim.schedule(0.0, watch)
        sim.run(until=30.0)
        assert flow.completed
        assert min(windows) == pytest.approx(1.0)


class TestKarnAndRtt:
    def test_retransmission_never_pollutes_rtt(self):
        """Even with many drops, srtt stays near the true path RTT
        because retransmitted segments are never sampled."""
        sim = Simulator()
        drops = {seq: {0} for seq in range(10, 200, 17)}
        link = ScriptedLink(sim, drops=drops)
        flow, _ = make_flow(sim, link, size=300)
        flow.start(0.0)
        sim.run(until=120.0)
        assert flow.completed
        # True RTT = 2 * 10ms prop + 1ms service ~ 21ms.
        assert flow.srtt < 0.1

    def test_rtt_samples_resume_after_recovery(self):
        sim = Simulator()
        link = ScriptedLink(sim, drops={20: {0}})
        flow, _ = make_flow(sim, link, size=200)
        flow.start(0.0)
        sim.run(until=60.0)
        assert flow.completed
        assert flow.rtt_estimator.srtt is not None


class TestReceiverRobustness:
    def test_duplicate_segments_ignored(self):
        """A spurious retransmission (drop of an ACK-path event is not
        modelled, so simulate via double transmission) does not corrupt
        the stream."""
        sim = Simulator()
        link = ScriptedLink(sim, drops={})
        flow, _ = make_flow(sim, link, size=30)
        flow.start(0.0)
        sim.run(until=1.0)
        # Force a spurious retransmission of an already-delivered seq.
        flow._transmit(0, retransmitted=True)
        sim.run(until=20.0)
        assert flow.completed
        assert flow.rcv_nxt == 30

    def test_out_of_order_buffer_drains(self):
        sim = Simulator()
        link = ScriptedLink(sim, drops={5: {0}})
        flow, _ = make_flow(sim, link, size=30)
        flow.start(0.0)
        sim.run(until=20.0)
        assert flow.completed
        assert not flow._out_of_order
