"""Property tests for the batched fixed-point solver.

The contract of :func:`~repro.fluid.solve_fixed_point_batch` mirrors the
batched integrator's: stacking K sweep points into one (K, n_routes)
state matrix must produce *bitwise-identical* fixed points to solving
the K points one at a time — including the per-point iteration count and
residual, because each point is frozen at the iteration where it first
converges.  Every test builds randomised scenarios from a seeded
generator and asserts exact equality (``np.array_equal``), not mere
closeness.
"""

import numpy as np
import pytest

from repro.fluid import (
    BatchFluidNetwork,
    FluidNetwork,
    PowerLoss,
    RedLoss,
    SharpLoss,
    epsilon_family_allocation,
    lia_allocation,
    olia_allocation,
    solve_fixed_point,
    solve_fixed_point_batch,
    tcp_allocation,
)

RULE_CHOICES = ("olia", "lia", "tcp", "epsilon")


def random_scenario_batch(rng, n_points, *, loss_family="power"):
    """K networks sharing a topology drawn from ``rng``.

    Topology (user/route/link structure) is shared across the batch —
    that is the batching contract — while capacities, loss parameters
    and RTTs differ per point.
    """
    n_tcp = int(rng.integers(1, 4))
    n_mp_routes = int(rng.integers(2, 4))
    networks = []
    for _ in range(n_points):
        net = FluidNetwork()
        links = []
        for _ in range(n_mp_routes):
            capacity = float(rng.uniform(50.0, 900.0))
            if loss_family == "red":
                model = RedLoss(capacity=capacity,
                                p_max=float(rng.uniform(0.05, 0.3)))
            elif loss_family == "sharp":
                model = SharpLoss(capacity=capacity)
            else:
                model = PowerLoss(capacity=capacity,
                                  p_at_capacity=float(
                                      rng.uniform(0.005, 0.05)))
            links.append(net.add_link(model))
        mp = net.add_user("mp")
        for link in links:
            net.add_route(mp, [link], rtt=float(rng.uniform(0.02, 0.4)))
        shared_rtt = float(rng.uniform(0.02, 0.4))
        for i in range(n_tcp):
            user = net.add_user(f"tcp{i}")
            net.add_route(user, [links[-1]], rtt=shared_rtt)
        networks.append(net)
    name = str(rng.choice(RULE_CHOICES))
    if name == "epsilon":
        from repro.core.registry import make_allocation_rule
        rule = make_allocation_rule("epsilon",
                                    epsilon=float(rng.uniform(0.2, 2.0)))
    else:
        rule = name
    rules = {0: rule}
    for i in range(n_tcp):
        rules[1 + i] = "tcp"
    return networks, rules


def assert_point_equal(solo, batched, k):
    assert np.array_equal(solo.rates, batched.rates), k
    assert np.array_equal(solo.route_loss, batched.route_loss), k
    assert np.array_equal(solo.link_loss, batched.link_loss), k
    assert solo.iterations == batched.iterations, k
    assert solo.converged == batched.converged, k
    assert solo.residual == batched.residual, k


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_k8_random_scenarios_match_sequential(self, seed):
        """K=8 batched solve == 8 sequential 1-D solves, bit for bit
        (the PR's core property)."""
        rng = np.random.default_rng(seed)
        networks, rules = random_scenario_batch(rng, 8)
        batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0)
        for k, net in enumerate(networks):
            solo = solve_fixed_point(net, rules, floor_packets=1.0)
            assert_point_equal(solo, batch.result(k), k)

    @pytest.mark.parametrize("loss_family", ["red", "sharp"])
    def test_other_loss_families(self, loss_family):
        rng = np.random.default_rng(7)
        networks, rules = random_scenario_batch(rng, 4,
                                                loss_family=loss_family)
        batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0)
        for k, net in enumerate(networks):
            solo = solve_fixed_point(net, rules, floor_packets=1.0)
            assert_point_equal(solo, batch.result(k), k)

    def test_points_freeze_at_their_own_iteration(self):
        """Points converge at different iterations; each must report its
        own count, not the batch maximum."""
        rng = np.random.default_rng(0)
        networks, rules = random_scenario_batch(rng, 6)
        batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0)
        assert batch.converged.all()
        assert len(set(batch.iterations.tolist())) > 1

    def test_accepts_prebuilt_batch_network(self):
        rng = np.random.default_rng(4)
        networks, rules = random_scenario_batch(rng, 3)
        via_list = solve_fixed_point_batch(networks, rules,
                                           floor_packets=1.0)
        via_batch = solve_fixed_point_batch(BatchFluidNetwork(networks),
                                            rules, floor_packets=1.0)
        assert np.array_equal(via_list.rates, via_batch.rates)

    def test_unconverged_points_flagged(self):
        rng = np.random.default_rng(5)
        networks, rules = random_scenario_batch(rng, 4)
        batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0,
                                        max_iter=3)
        assert not batch.converged.any()
        assert (batch.iterations == 3).all()
        assert np.isfinite(batch.residual).all()

    def test_x0_shape_validated(self):
        rng = np.random.default_rng(6)
        networks, rules = random_scenario_batch(rng, 4)
        with pytest.raises(ValueError, match="x0"):
            solve_fixed_point_batch(networks, rules,
                                    x0=np.ones(networks[0].n_routes))


class TestTieCycleStopping:
    """OLIA best-set tie rows must converge, not walk the anneal ladder.

    The bench sweep grid contains rows whose OLIA best-set membership
    flips every iteration (a period-2 tie cycle).  The cycle amplitude
    is proportional to the step size while the stagnation rescale is
    its inverse, so annealing can never settle such a row — it used to
    anneal to the floor and freeze ``converged=False`` after ~2000
    iterations.  The tie-cycle exemption (alternating steps with a
    window AR(1) contraction estimate strictly inside the unit circle)
    keeps the step size fixed and lets the period-2 residual test catch
    the collapsing cycle instead.
    """

    @staticmethod
    def bench_grid():
        from repro.benchreport import sweep_networks
        rules = {0: "olia", 1: "tcp", 2: "tcp", 3: "tcp"}
        return sweep_networks(64), rules

    def test_bench_tie_rows_converge(self):
        networks, rules = self.bench_grid()
        batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0,
                                        tol=1e-8)
        assert batch.converged.all(), np.flatnonzero(~batch.converged)
        # The tie rows converge through the period-2 test at their
        # nominal step size — far under the ~2000 iterations the
        # anneal-to-floor freeze used to burn.
        assert int(batch.iterations.max()) < 1000

    def test_tie_row_matches_sequential(self):
        """The known tie row (grid point 27) stays bitwise equal
        between sequential and batched solves."""
        networks, rules = self.bench_grid()
        batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0,
                                        tol=1e-8)
        solo = solve_fixed_point(networks[27], rules, floor_packets=1.0,
                                 tol=1e-8)
        assert solo.converged
        assert_point_equal(solo, batch.result(27), 27)


class TestBatchedAllocationRules:
    """Each rule applied to a (K, m) stack must equal its rows 1-by-1."""

    @staticmethod
    def random_stack(rng, k=16, m=3):
        p = rng.uniform(1e-4, 0.2, size=(k, m))
        rtt = rng.uniform(0.02, 0.4, size=(k, m))
        return p, rtt

    @pytest.mark.parametrize("rule", [
        tcp_allocation, lia_allocation, olia_allocation,
        lambda p, rtt: epsilon_family_allocation(p, rtt, 0.7),
        lambda p, rtt: epsilon_family_allocation(p, rtt, 0.0),
    ])
    def test_stack_equals_rows(self, rule):
        rng = np.random.default_rng(11)
        p, rtt = self.random_stack(rng)
        stacked = rule(p, rtt)
        assert stacked.shape == p.shape
        for k in range(p.shape[0]):
            assert np.array_equal(stacked[k], rule(p[k], rtt[k])), k

    def test_olia_floor_broadcasts(self):
        rng = np.random.default_rng(12)
        p, rtt = self.random_stack(rng, k=5)
        floor = 1.0 / rtt
        stacked = olia_allocation(p, rtt, floor=floor)
        for k in range(5):
            assert np.array_equal(
                stacked[k], olia_allocation(p[k], rtt[k], floor=floor[k]))


class TestBatchResultAccessors:
    def test_results_and_user_totals(self):
        rng = np.random.default_rng(13)
        networks, rules = random_scenario_batch(rng, 5)
        batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0)
        assert batch.n_points == 5
        assert len(batch.results()) == 5
        totals = batch.user_totals()
        assert totals.shape == (5, networks[0].n_users)
        assert np.array_equal(
            totals[2], batch.result(2).user_totals(networks[2]))
