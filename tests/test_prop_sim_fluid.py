"""Property-based tests for queues, engine, units, and fluid allocations."""

import random

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro import units
from repro.analysis.tcp import loss_for_rate, tcp_rate
from repro.fluid.equilibrium import (
    epsilon_family_allocation,
    lia_allocation,
    olia_allocation,
)
from repro.fluid.loss import PowerLoss, RedLoss
from repro.sim.engine import Simulator
from repro.sim.queues import REDQueue

probs = st.floats(min_value=1e-5, max_value=0.5,
                  allow_nan=False, allow_infinity=False)
rtts = st.floats(min_value=1e-3, max_value=2.0,
                 allow_nan=False, allow_infinity=False)


class TestUnitsProperties:
    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_mbps_pps_roundtrip(self, mbps):
        assert abs(units.pps_to_mbps(units.mbps_to_pps(mbps)) - mbps) \
            <= 1e-9 * mbps

    @given(st.integers(min_value=1, max_value=10**9))
    def test_bytes_to_packets_covers_payload(self, nbytes):
        packets = units.bytes_to_packets(nbytes)
        assert packets * units.MSS_BYTES >= nbytes
        assert (packets - 1) * units.MSS_BYTES < nbytes


class TestTcpFormulaProperties:
    @given(probs, rtts)
    def test_rate_loss_inverse(self, p, rtt):
        assert abs(loss_for_rate(tcp_rate(p, rtt), rtt) - p) < 1e-9 * p

    @given(probs, probs, rtts)
    def test_rate_decreasing_in_loss(self, p1, p2, rtt):
        lo, hi = sorted((p1, p2))
        assert tcp_rate(lo, rtt) >= tcp_rate(hi, rtt)


class TestAllocationProperties:
    @given(st.lists(probs, min_size=1, max_size=6), rtts)
    def test_lia_total_equals_best_path_rate(self, ps, rtt):
        rtt_vec = [rtt] * len(ps)
        x = lia_allocation(ps, rtt_vec)
        best = max(tcp_rate(p, rtt) for p in ps)
        assert abs(float(np.sum(x)) - best) < 1e-6 * best

    @given(st.lists(probs, min_size=2, max_size=6), rtts)
    def test_lia_windows_inverse_to_loss(self, ps, rtt):
        rtt_vec = [rtt] * len(ps)
        x = lia_allocation(ps, rtt_vec)
        # Windows w = x * rtt proportional to 1/p (equal RTTs).
        products = [xi * rtt * pi for xi, pi in zip(x, ps)]
        assert max(products) - min(products) < 1e-6 * max(products)

    @given(st.lists(probs, min_size=1, max_size=6), rtts)
    def test_olia_uses_only_best_paths(self, ps, rtt):
        rtt_vec = [rtt] * len(ps)
        x = olia_allocation(ps, rtt_vec)
        best = max(tcp_rate(p, rtt) for p in ps)
        assert abs(float(np.sum(x)) - best) < 1e-6 * best
        for xi, pi in zip(x, ps):
            if xi > 0:
                assert tcp_rate(pi, rtt) >= best * (1 - 1e-5)

    @given(st.lists(probs, min_size=1, max_size=6), rtts,
           st.floats(min_value=0.1, max_value=2.0))
    def test_epsilon_family_total_invariant(self, ps, rtt, eps):
        rtt_vec = [rtt] * len(ps)
        x = epsilon_family_allocation(ps, rtt_vec, eps)
        best = max(tcp_rate(p, rtt) for p in ps)
        assert abs(float(np.sum(x)) - best) < 1e-6 * best

    @given(st.lists(probs, min_size=2, max_size=6), rtts)
    def test_epsilon_orders_by_loss(self, ps, rtt):
        """Less lossy paths always get at least as much rate."""
        x = epsilon_family_allocation(ps, [rtt] * len(ps), 1.0)
        order = np.argsort(ps)
        rates_sorted = x[order]
        assert all(a >= b - 1e-9 for a, b in zip(rates_sorted,
                                                 rates_sorted[1:]))


class TestLossModelProperties:
    @given(st.floats(min_value=1.0, max_value=1e5),
           st.lists(st.floats(min_value=0.0, max_value=3e5),
                    min_size=2, max_size=10))
    def test_power_loss_monotone(self, capacity, ys):
        loss = PowerLoss(capacity=capacity)
        values = [loss(y) for y in sorted(ys)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert all(0.0 <= v <= 1.0 for v in values)

    @given(st.floats(min_value=1.0, max_value=1e5),
           st.floats(min_value=0.0, max_value=3e5))
    def test_cost_nonnegative_and_increasing(self, capacity, y):
        loss = RedLoss(capacity=capacity)
        assert loss.cost(y) >= 0.0
        assert loss.cost(y * 1.5) >= loss.cost(y)


class TestRedQueueProperties:
    @given(st.floats(min_value=0.0, max_value=500.0))
    def test_drop_probability_in_unit_interval(self, avg):
        queue = REDQueue(random.Random(1), min_th=25, max_th=50)
        queue.avg = avg
        assert 0.0 <= queue.drop_probability() <= 1.0

    @given(st.lists(st.floats(min_value=0, max_value=400), min_size=2,
                    max_size=20))
    def test_drop_probability_monotone_in_average(self, avgs):
        queue = REDQueue(random.Random(1), min_th=25, max_th=50)
        values = []
        for avg in sorted(avgs):
            queue.avg = avg
            values.append(queue.drop_probability())
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_events_execute_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run(until=200.0)
        assert len(fired) == len(delays)
        assert fired == sorted(fired)

    @given(st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_same_time_events_fifo(self, tags):
        sim = Simulator()
        fired = []
        for tag in tags:
            sim.schedule(1.0, fired.append, tag)
        sim.run(until=2.0)
        assert fired == tags
