"""Tests for the CI bench regression checker (benchmarks/check_bench.py)."""

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    pathlib.Path(__file__).parent.parent / "benchmarks" / "check_bench.py")
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


def _report(*, fluid_speedup=30.0, eq_speedup=4.0, engine_speedup=1.4,
            loaded_speedup=3.0, auto_speedup=0.95, churn_speedup=8.0,
            balia_fluid_speedup=20.0, balia_eq_speedup=4.0,
            compiled_speedup=7.5, compiled_available=True,
            n_points=64, n_events=200_000, n_ticks=2000, bitwise=True,
            balia_bitwise=True):
    compiled = {"available": compiled_available, "n_events": n_events,
                "n_pending": 20_000}
    if compiled_available:
        compiled["speedup"] = compiled_speedup
    return {
        "fluid_sweep": {"n_points": n_points, "speedup": fluid_speedup,
                        "bitwise_equal": bitwise},
        "equilibrium_sweep": {"n_points": n_points, "speedup": eq_speedup,
                              "bitwise_equal": bitwise},
        "fluid_sweep_balia": {"algorithm": "balia", "n_points": n_points,
                              "speedup": balia_fluid_speedup,
                              "bitwise_equal": balia_bitwise},
        "equilibrium_sweep_balia": {"algorithm": "balia",
                                    "n_points": n_points,
                                    "speedup": balia_eq_speedup,
                                    "bitwise_equal": balia_bitwise},
        "engine": {"n_events": n_events, "speedup": engine_speedup},
        "engine_loaded": {"n_events": n_events, "n_pending": 20_000,
                          "speedup": loaded_speedup},
        "engine_auto": {"n_events": n_events, "n_pending": 20_000,
                        "speedup": auto_speedup},
        "engine_compiled": compiled,
        "timer_churn": {"n_timers": 32, "n_ticks": n_ticks,
                        "speedup": churn_speedup},
    }


def _scale_run(backend, events_per_sec=250_000.0, **overrides):
    run = {
        "backend": backend,
        "n_flows": 1000,
        "events_per_sec": events_per_sec,
        "wall_seconds": 1.2,
        "events": 300_000,
        "peak_pending": 8000,
        "migrations": 1 if backend == "auto" else 0,
        "goodput_mean_pps": 40.0,
        "goodput_p50_pps": 12.0,
    }
    run.update(overrides)
    return run


def _scale_report(auto_vs_wheel=1.0, **run_overrides):
    return {
        "benchmark": "BENCH_scale",
        "smoke": False,
        "presets": {
            "medium": {
                "backends": {
                    "heap": _scale_run("heap"),
                    "wheel": _scale_run("wheel"),
                    "auto": _scale_run("auto", **run_overrides),
                },
                "auto_vs_wheel": auto_vs_wheel,
            },
        },
    }


class TestCheckReport:
    def test_identical_reports_pass(self):
        assert check_bench.check_report(_report(), _report()) == []

    def test_halved_speedup_at_same_size_still_passes(self):
        new = _report(fluid_speedup=15.1)
        assert check_bench.check_report(new, _report(), factor=2.0) == []

    def test_more_than_2x_regression_fails(self):
        new = _report(fluid_speedup=14.0)
        failures = check_bench.check_report(new, _report(), factor=2.0)
        assert len(failures) == 1
        assert "fluid_sweep" in failures[0]

    def test_bitwise_mismatch_fails(self):
        new = _report(bitwise=False)
        failures = check_bench.check_report(new, _report())
        assert len(failures) == 2
        assert all("bitwise" in f for f in failures)

    def test_balia_bitwise_mismatch_fails(self):
        """BALIA's sweep rows are validated exactly like the others."""
        new = _report(balia_bitwise=False)
        failures = check_bench.check_report(new, _report())
        assert len(failures) == 2
        assert all("bitwise" in f and "balia" in f for f in failures)

    def test_balia_regression_fails(self):
        new = _report(balia_fluid_speedup=5.0)
        failures = check_bench.check_report(new, _report(), factor=2.0)
        assert len(failures) == 1
        assert "fluid_sweep_balia" in failures[0]

    def test_missing_balia_section_fails(self):
        new = _report()
        del new["equilibrium_sweep_balia"]
        failures = check_bench.check_report(new, _report())
        assert any("equilibrium_sweep_balia" in f and "missing" in f
                   for f in failures)

    def test_smoke_sizes_use_absolute_floors(self):
        """A smoke report (smaller workloads) is not held to the
        full-size baseline's speedup, only to the documented floors."""
        new = _report(fluid_speedup=5.0, eq_speedup=2.0,
                      loaded_speedup=1.5, churn_speedup=4.0,
                      n_points=8, n_events=20_000, n_ticks=300)
        assert check_bench.check_report(new, _report()) == []
        too_slow = _report(fluid_speedup=1.5, n_points=8,
                           n_events=20_000, n_ticks=300)
        failures = check_bench.check_report(too_slow, _report())
        assert len(failures) == 1
        assert "smoke floor" in failures[0]

    def test_timer_churn_regression_fails(self):
        new = _report(churn_speedup=3.0)
        failures = check_bench.check_report(new, _report(), factor=2.0)
        assert len(failures) == 1
        assert "timer_churn" in failures[0]

    def test_engine_loaded_below_smoke_floor_fails(self):
        new = _report(loaded_speedup=1.0, n_points=8,
                      n_events=20_000, n_ticks=300)
        failures = check_bench.check_report(new, _report())
        assert len(failures) == 1
        assert "engine_loaded" in failures[0]

    def test_missing_section_in_new_report_fails(self):
        new = _report()
        del new["equilibrium_sweep"]
        failures = check_bench.check_report(new, _report())
        assert any("missing" in f for f in failures)

    def test_missing_engine_section_fails(self):
        """Every tracked section must be present — the gate must not
        pass because a benchmark stopped being emitted."""
        new = _report()
        del new["engine"]
        failures = check_bench.check_report(new, _report())
        assert any("engine" in f and "missing" in f for f in failures)

    def test_section_without_speedup_fails(self):
        new = _report()
        del new["engine"]["speedup"]
        failures = check_bench.check_report(new, _report())
        assert any("engine" in f and "missing" in f for f in failures)

    def test_baseline_without_section_falls_back_to_floor(self):
        """Old committed baselines predate the equilibrium section."""
        baseline = _report()
        del baseline["equilibrium_sweep"]
        assert check_bench.check_report(_report(), baseline) == []

    def test_nan_speedup_fails_instead_of_passing(self):
        """NaN < bound is False, so without the finiteness check a
        broken benchmark would silently pass the gate."""
        new = _report(engine_speedup=float("nan"))
        failures = check_bench.check_report(new, _report())
        assert len(failures) == 1
        assert "engine" in failures[0] and "finite" in failures[0]

    def test_auto_backend_regression_fails(self):
        new = _report(auto_speedup=0.3, n_points=8, n_events=20_000,
                      n_ticks=300)
        failures = check_bench.check_report(new, _report())
        assert len(failures) == 1
        assert "engine_auto" in failures[0]

    def test_compiled_regression_fails(self):
        new = _report(compiled_speedup=2.0)
        failures = check_bench.check_report(new, _report(), factor=2.0)
        assert len(failures) == 1
        assert "engine_compiled" in failures[0]

    def test_compiled_below_smoke_floor_fails(self):
        new = _report(compiled_speedup=1.0, n_points=8,
                      n_events=20_000, n_ticks=300)
        failures = check_bench.check_report(new, _report())
        assert len(failures) == 1
        assert "engine_compiled" in failures[0]
        assert "smoke floor" in failures[0]

    def test_unavailable_compiled_section_is_skipped(self):
        """A report from a pure-python checkout (available: false, no
        speedup recorded) must pass — the fallback lane in CI runs
        exactly this configuration on purpose."""
        new = _report(compiled_available=False)
        assert check_bench.check_report(new, _report()) == []

    def test_missing_compiled_section_still_fails(self):
        """available=false is a deliberate skip; the section vanishing
        from the report entirely is a regression like any other."""
        new = _report()
        del new["engine_compiled"]
        failures = check_bench.check_report(new, _report())
        assert any("engine_compiled" in f and "missing" in f
                   for f in failures)

    def test_baseline_from_pure_checkout_uses_the_floor(self):
        """Baseline recorded without the extension has no speedup —
        the new (compiled) report is held to the smoke floor."""
        baseline = _report(compiled_available=False)
        assert check_bench.check_report(_report(), baseline) == []
        slow = _report(compiled_speedup=1.0)
        failures = check_bench.check_report(slow, baseline)
        assert len(failures) == 1
        assert "engine_compiled" in failures[0]


class TestCheckScaleReport:
    def test_valid_report_passes(self):
        assert check_bench.check_scale_report(_scale_report()) == []

    def test_empty_report_fails(self):
        assert check_bench.check_scale_report({"presets": {}})
        assert check_bench.check_scale_report({})

    def test_missing_metric_fails(self):
        report = _scale_report()
        del report["presets"]["medium"]["backends"]["auto"][
            "events_per_sec"]
        failures = check_bench.check_scale_report(report)
        assert any("events_per_sec" in f and "missing" in f
                   for f in failures)

    def test_nan_metric_fails(self):
        report = _scale_report(goodput_mean_pps=float("nan"))
        failures = check_bench.check_scale_report(report)
        assert any("goodput_mean_pps" in f and "finite" in f
                   for f in failures)

    def test_non_positive_events_per_sec_fails(self):
        report = _scale_report(events_per_sec=0.0)
        failures = check_bench.check_scale_report(report)
        assert any("positive" in f for f in failures)

    def test_non_positive_wall_seconds_fails(self):
        report = _scale_report(wall_seconds=-1.0)
        failures = check_bench.check_scale_report(report)
        assert any("wall_seconds" in f and "positive" in f
                   for f in failures)

    def test_stale_ratio_flag_waives_the_requirement(self):
        report = _scale_report()
        entry = report["presets"]["medium"]
        del entry["auto_vs_wheel"]
        entry["auto_vs_wheel_stale"] = True
        assert check_bench.check_scale_report(report) == []

    def test_auto_below_wheel_floor_fails(self):
        report = _scale_report(auto_vs_wheel=0.5)
        failures = check_bench.check_scale_report(report)
        assert any("auto backend" in f for f in failures)

    def test_missing_ratio_with_both_backends_fails(self):
        report = _scale_report()
        del report["presets"]["medium"]["auto_vs_wheel"]
        failures = check_bench.check_scale_report(report)
        assert any("auto_vs_wheel" in f for f in failures)

    def test_truncated_report_fails_without_traceback(self):
        """A half-written BENCH_scale.json must produce FAIL lines,
        not an AttributeError before anything is printed."""
        for broken in (
                [1, 2, 3],
                {"presets": {"medium": None}},
                {"presets": {"medium": {"backends": {"auto": None}}}},
                {"presets": {"medium": {"backends": {"auto": []}}}}):
            failures = check_bench.check_scale_report(broken)
            assert failures, broken
            # The markdown writer must survive the same inputs (it
            # runs before the failures are reported).
            if isinstance(broken, dict):
                check_bench.summary_markdown(None, None, broken)


def _serve_report(*, cold_speedup=6.0, warm_improvement=500.0,
                  replay_speedup=50.0, warm_hit_rate=1.0,
                  replay_hit_rate=0.99, bitwise=True, smoke=False,
                  **top):
    report = {
        "benchmark": "serve",
        "bitwise_equal": bitwise,
        "config": {"queries": 1_000_000, "latency_queries": 2000,
                   "concurrency": 128},
        "sequential_baseline": {"qps": 50.0, "p50_ms": 20.0},
        "cold": {"qps": 50.0 * cold_speedup, "p50_ms": 400.0,
                 "p99_ms": 900.0,
                 "speedup_vs_sequential": cold_speedup},
        "warm": {"qps": 10_000.0, "p50_ms": 20.0 / warm_improvement,
                 "p99_ms": 0.2, "p50_improvement": warm_improvement,
                 "hit_rate": warm_hit_rate},
        "replay": {"qps": 50.0 * replay_speedup, "p50_ms": 0.1,
                   "p99_ms": 5.0,
                   "speedup_vs_sequential": replay_speedup,
                   "hit_rate": replay_hit_rate},
        "store": {"hits": 900_000, "misses": 100_000},
    }
    if smoke:
        report["smoke"] = True
    report.update(top)
    return report


class TestCheckServeReport:
    def test_good_report_passes(self):
        assert check_bench.check_serve_report(_serve_report()) == []

    def test_wrong_benchmark_field_fails_fast(self):
        failures = check_bench.check_serve_report(
            _serve_report(benchmark="fluid"))
        assert len(failures) == 1
        assert "wrong file" in failures[0]

    def test_non_dict_report_rejected(self):
        assert check_bench.check_serve_report(["not", "a", "dict"])

    def test_bitwise_divergence_fails(self):
        failures = check_bench.check_serve_report(
            _serve_report(bitwise=False))
        assert any("bitwise" in f for f in failures)

    def test_cold_speedup_floor(self):
        failures = check_bench.check_serve_report(
            _serve_report(cold_speedup=3.0))
        assert any("cold_speedup" in f and "5x" in f for f in failures)

    def test_warm_p50_floor(self):
        failures = check_bench.check_serve_report(
            _serve_report(warm_improvement=4.0))
        assert any("warm_p50_improvement" in f for f in failures)

    def test_smoke_floors_are_looser_on_cold_only(self):
        smoke = _serve_report(cold_speedup=2.0, smoke=True)
        assert check_bench.check_serve_report(smoke) == []
        assert check_bench.check_serve_report(
            _serve_report(cold_speedup=2.0))
        # The memoized win is scale-independent: same bar in smoke.
        failures = check_bench.check_serve_report(
            _serve_report(warm_improvement=4.0, smoke=True))
        assert any("warm_p50_improvement" in f for f in failures)

    def test_warm_hit_rate_below_099_fails(self):
        failures = check_bench.check_serve_report(
            _serve_report(warm_hit_rate=0.9))
        assert any("persistent store" in f for f in failures)

    def test_hit_rate_outside_unit_interval_fails(self):
        failures = check_bench.check_serve_report(
            _serve_report(replay_hit_rate=1.5))
        assert any("not in [0, 1]" in f for f in failures)

    def test_nan_metric_fails(self):
        report = _serve_report()
        report["cold"]["qps"] = float("nan")
        failures = check_bench.check_serve_report(report)
        assert any("cold.qps" in f for f in failures)

    def test_missing_metric_fails(self):
        report = _serve_report()
        del report["replay"]["p50_ms"]
        assert check_bench.check_serve_report(report)

    def test_baseline_ratio_regression_fails(self):
        new = _serve_report(cold_speedup=6.0, replay_speedup=20.0)
        baseline = _serve_report(cold_speedup=6.0, replay_speedup=100.0)
        failures = check_bench.check_serve_report(new, baseline=baseline)
        assert any("replay_speedup" in f and "baseline" in f
                   for f in failures)
        # Within the 2x slack the same baseline passes.
        ok = _serve_report(cold_speedup=6.0, replay_speedup=60.0)
        assert check_bench.check_serve_report(ok, baseline=baseline) == []

    def test_baseline_of_different_size_only_floors_apply(self):
        new = _serve_report(replay_speedup=20.0)
        baseline = _serve_report(replay_speedup=100.0)
        baseline["config"]["queries"] = 10_000
        assert check_bench.check_serve_report(new,
                                              baseline=baseline) == []


class TestStepSummary:
    def test_markdown_mentions_every_section(self):
        text = check_bench.summary_markdown(_report(), _report(),
                                            _scale_report())
        for section in check_bench.SIZE_KEYS:
            assert section in text
        assert "medium" in text and "auto vs wheel" in text

    def test_written_when_env_set(self, tmp_path, monkeypatch):
        target = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(target))
        check_bench.write_step_summary("## Bench check\n")
        check_bench.write_step_summary("more\n")
        assert target.read_text() == "## Bench check\nmore\n"

    def test_skipped_when_env_unset(self, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        check_bench.write_step_summary("ignored")   # must not raise


class TestMain:
    def test_cli_round_trip(self, tmp_path, capsys):
        new_path = tmp_path / "new.json"
        base_path = tmp_path / "base.json"
        new_path.write_text(json.dumps(_report()))
        base_path.write_text(json.dumps(_report()))
        assert check_bench.main([str(new_path),
                                 "--baseline", str(base_path)]) == 0
        bad = _report(fluid_speedup=1.0)
        new_path.write_text(json.dumps(bad))
        assert check_bench.main([str(new_path),
                                 "--baseline", str(base_path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_cli_validates_scale_report(self, tmp_path, capsys):
        new_path = tmp_path / "new.json"
        base_path = tmp_path / "base.json"
        scale_path = tmp_path / "scale.json"
        new_path.write_text(json.dumps(_report()))
        base_path.write_text(json.dumps(_report()))
        scale_path.write_text(json.dumps(_scale_report()))
        assert check_bench.main([str(new_path), "--baseline",
                                 str(base_path), "--scale",
                                 str(scale_path)]) == 0
        scale_path.write_text(json.dumps(
            _scale_report(events_per_sec=float("nan"))))
        assert check_bench.main([str(new_path), "--baseline",
                                 str(base_path), "--scale",
                                 str(scale_path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_cli_scale_only_mode(self, tmp_path, capsys):
        """The nightly tier validates BENCH_scale.json standalone —
        no throwaway smoke bench needed just to fill the positional."""
        scale_path = tmp_path / "scale.json"
        scale_path.write_text(json.dumps(_scale_report()))
        assert check_bench.main(["--scale", str(scale_path)]) == 0
        assert "bench check OK" in capsys.readouterr().out
        scale_path.write_text(json.dumps({"presets": {}}))
        assert check_bench.main(["--scale", str(scale_path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_cli_serve_only_mode(self, tmp_path, capsys):
        serve_path = tmp_path / "serve.json"
        serve_path.write_text(json.dumps(_serve_report()))
        assert check_bench.main(["--serve", str(serve_path)]) == 0
        serve_path.write_text(json.dumps(
            _serve_report(cold_speedup=1.1)))
        assert check_bench.main(["--serve", str(serve_path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_cli_serve_with_baseline(self, tmp_path, capsys):
        serve_path = tmp_path / "serve.json"
        base_path = tmp_path / "serve_base.json"
        serve_path.write_text(json.dumps(_serve_report()))
        base_path.write_text(json.dumps(_serve_report()))
        assert check_bench.main(["--serve", str(serve_path),
                                 "--serve-baseline",
                                 str(base_path)]) == 0

    def test_cli_requires_some_report(self, capsys):
        with pytest.raises(SystemExit):
            check_bench.main([])
        assert "nothing to check" in capsys.readouterr().err

    def test_cli_writes_step_summary(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        new_path = tmp_path / "new.json"
        base_path = tmp_path / "base.json"
        new_path.write_text(json.dumps(_report()))
        base_path.write_text(json.dumps(_report()))
        assert check_bench.main([str(new_path),
                                 "--baseline", str(base_path)]) == 0
        assert "Bench check" in summary.read_text()


def _dist_run(workers, *, points=10000, pps=100.0, scaling=None,
              **overrides):
    run = {
        "workers": workers,
        "wall_seconds": points / pps,
        "points_per_sec": pps,
        "completed": points,
        "reassigned_points": 0,
        "duplicate_results": 0,
        "dead_workers": 0,
        "leases_granted": points // 8,
        "core_limited": False,
        "bitwise_equal": True,
    }
    if scaling is not None:
        run["scaling_vs_1"] = scaling
        run["efficiency"] = scaling / workers
    run.update(overrides)
    return run


def _dist_report(*, smoke=False, points=10000, scaling=1.8, **overrides):
    report = {
        "benchmark": "dist",
        "smoke": smoke,
        "python": "3.11.7",
        "cpu_count": 4,
        "grid": {"points": points, "families": ["wired"],
                 "schedulers": ["minrtt"], "algorithms": ["olia"],
                 "seeds": 1, "max_flows": 2, "horizon": 6.0},
        "reference": {"wall_seconds": points / 110.0,
                      "points_per_sec": 110.0},
        "workers": {
            "1": _dist_run(1, points=points, pps=100.0),
            "2": _dist_run(2, points=points, pps=100.0 * scaling,
                           scaling=scaling),
        },
        "bitwise_equal": True,
    }
    report.update(overrides)
    return report


class TestCheckDistReport:
    def test_good_report_passes(self):
        assert check_bench.check_dist_report(_dist_report()) == []

    def test_wrong_benchmark_kind_fails(self):
        failures = check_bench.check_dist_report({"benchmark": "serve"})
        assert any("expected 'dist'" in f for f in failures)

    def test_bitwise_mismatch_fails(self):
        report = _dist_report(bitwise_equal=False)
        failures = check_bench.check_dist_report(report)
        assert any("bitwise-equal" in f for f in failures)

    def test_per_run_bitwise_mismatch_fails(self):
        report = _dist_report()
        report["workers"]["2"]["bitwise_equal"] = False
        failures = check_bench.check_dist_report(report)
        assert any("2 worker(s)" in f and "bitwise-equal" in f
                   for f in failures)

    def test_lost_points_fail(self):
        report = _dist_report()
        report["workers"]["2"]["completed"] = 9999
        failures = check_bench.check_dist_report(report)
        assert any("lost work" in f for f in failures)

    def test_nan_points_per_sec_fails(self):
        report = _dist_report()
        report["workers"]["1"]["points_per_sec"] = float("nan")
        failures = check_bench.check_dist_report(report)
        assert any("points_per_sec" in f for f in failures)

    def test_missing_workers_section_fails(self):
        report = _dist_report()
        report["workers"] = {}
        failures = check_bench.check_dist_report(report)
        assert any("no fabric runs" in f for f in failures)

    def test_negative_counter_fails(self):
        report = _dist_report()
        report["workers"]["1"]["reassigned_points"] = -1
        failures = check_bench.check_dist_report(report)
        assert any("reassigned_points" in f for f in failures)

    def test_scaling_below_full_floor_fails(self):
        report = _dist_report(scaling=1.4)
        failures = check_bench.check_dist_report(report)
        assert any("below the 1.6x floor" in f for f in failures)

    def test_smoke_floor_is_lower(self):
        assert check_bench.check_dist_report(
            _dist_report(smoke=True, scaling=1.3)) == []
        failures = check_bench.check_dist_report(
            _dist_report(smoke=True, scaling=1.05))
        assert any("below the 1.1x floor" in f for f in failures)

    def test_core_limited_run_skips_scaling_floor(self):
        report = _dist_report(scaling=0.9)
        report["workers"]["2"]["core_limited"] = True
        assert check_bench.check_dist_report(report) == []

    def test_scaling_stale_run_skips_scaling_floor(self):
        report = _dist_report(scaling=0.9)
        report["workers"]["2"]["scaling_stale"] = True
        assert check_bench.check_dist_report(report) == []

    def test_missing_scaling_ratio_fails_when_not_skipped(self):
        report = _dist_report()
        del report["workers"]["2"]["scaling_vs_1"]
        failures = check_bench.check_dist_report(report)
        assert any("scaling_vs_1" in f for f in failures)

    def test_cli_dist_only(self, tmp_path, capsys):
        path = tmp_path / "dist.json"
        path.write_text(json.dumps(_dist_report()))
        assert check_bench.main(["--dist", str(path)]) == 0
        path.write_text(json.dumps(_dist_report(scaling=1.2)))
        assert check_bench.main(["--dist", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_dist_section_in_step_summary(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        path = tmp_path / "dist.json"
        path.write_text(json.dumps(_dist_report()))
        assert check_bench.main(["--dist", str(path)]) == 0
        text = summary.read_text()
        assert "Distributed sweep fabric" in text
        assert "1.80x" in text
