"""Tests for the CI bench regression checker (benchmarks/check_bench.py)."""

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    pathlib.Path(__file__).parent.parent / "benchmarks" / "check_bench.py")
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


def _report(*, fluid_speedup=30.0, eq_speedup=4.0, engine_speedup=1.4,
            loaded_speedup=3.0, churn_speedup=8.0,
            n_points=64, n_events=200_000, n_ticks=2000, bitwise=True):
    return {
        "fluid_sweep": {"n_points": n_points, "speedup": fluid_speedup,
                        "bitwise_equal": bitwise},
        "equilibrium_sweep": {"n_points": n_points, "speedup": eq_speedup,
                              "bitwise_equal": bitwise},
        "engine": {"n_events": n_events, "speedup": engine_speedup},
        "engine_loaded": {"n_events": n_events, "n_pending": 20_000,
                          "speedup": loaded_speedup},
        "timer_churn": {"n_timers": 32, "n_ticks": n_ticks,
                        "speedup": churn_speedup},
    }


class TestCheckReport:
    def test_identical_reports_pass(self):
        assert check_bench.check_report(_report(), _report()) == []

    def test_halved_speedup_at_same_size_still_passes(self):
        new = _report(fluid_speedup=15.1)
        assert check_bench.check_report(new, _report(), factor=2.0) == []

    def test_more_than_2x_regression_fails(self):
        new = _report(fluid_speedup=14.0)
        failures = check_bench.check_report(new, _report(), factor=2.0)
        assert len(failures) == 1
        assert "fluid_sweep" in failures[0]

    def test_bitwise_mismatch_fails(self):
        new = _report(bitwise=False)
        failures = check_bench.check_report(new, _report())
        assert len(failures) == 2
        assert all("bitwise" in f for f in failures)

    def test_smoke_sizes_use_absolute_floors(self):
        """A smoke report (smaller workloads) is not held to the
        full-size baseline's speedup, only to the documented floors."""
        new = _report(fluid_speedup=5.0, eq_speedup=2.0,
                      loaded_speedup=1.5, churn_speedup=4.0,
                      n_points=8, n_events=20_000, n_ticks=300)
        assert check_bench.check_report(new, _report()) == []
        too_slow = _report(fluid_speedup=1.5, n_points=8,
                           n_events=20_000, n_ticks=300)
        failures = check_bench.check_report(too_slow, _report())
        assert len(failures) == 1
        assert "smoke floor" in failures[0]

    def test_timer_churn_regression_fails(self):
        new = _report(churn_speedup=3.0)
        failures = check_bench.check_report(new, _report(), factor=2.0)
        assert len(failures) == 1
        assert "timer_churn" in failures[0]

    def test_engine_loaded_below_smoke_floor_fails(self):
        new = _report(loaded_speedup=1.0, n_points=8,
                      n_events=20_000, n_ticks=300)
        failures = check_bench.check_report(new, _report())
        assert len(failures) == 1
        assert "engine_loaded" in failures[0]

    def test_missing_section_in_new_report_fails(self):
        new = _report()
        del new["equilibrium_sweep"]
        failures = check_bench.check_report(new, _report())
        assert any("missing" in f for f in failures)

    def test_missing_engine_section_fails(self):
        """Every tracked section must be present — the gate must not
        pass because a benchmark stopped being emitted."""
        new = _report()
        del new["engine"]
        failures = check_bench.check_report(new, _report())
        assert any("engine" in f and "missing" in f for f in failures)

    def test_section_without_speedup_fails(self):
        new = _report()
        del new["engine"]["speedup"]
        failures = check_bench.check_report(new, _report())
        assert any("engine" in f and "missing" in f for f in failures)

    def test_baseline_without_section_falls_back_to_floor(self):
        """Old committed baselines predate the equilibrium section."""
        baseline = _report()
        del baseline["equilibrium_sweep"]
        assert check_bench.check_report(_report(), baseline) == []


class TestMain:
    def test_cli_round_trip(self, tmp_path, capsys):
        new_path = tmp_path / "new.json"
        base_path = tmp_path / "base.json"
        new_path.write_text(json.dumps(_report()))
        base_path.write_text(json.dumps(_report()))
        assert check_bench.main([str(new_path),
                                 "--baseline", str(base_path)]) == 0
        bad = _report(fluid_speedup=1.0)
        new_path.write_text(json.dumps(bad))
        assert check_bench.main([str(new_path),
                                 "--baseline", str(base_path)]) == 1
        assert "FAIL" in capsys.readouterr().err
